"""Declarative SLO rules evaluated against the telemetry layer.

A campaign (chaos sweep, §VI brute force, forced-crash forensics run) is
healthy only if its *temporal* behavior stays inside budget — stale
serving bounded, no crash loops, parse latency under its p95 budget.  An
:class:`SloRule` states one such objective; :func:`evaluate_slos` reads
the observed value from the collector's metrics registry (whole-run
aggregates) or its attached :class:`~repro.obs.timeseries.TimeSeriesStore`
(windowed rates and percentiles), emits a typed ``slo.breach`` trace
event per violated rule, and returns an :class:`SloReport` verdict table
in the same spirit as the chaos sweep's ``ReliabilityReport``.

Rule grammar (one line per rule, parsed by :func:`parse_rule`)::

    <metric> <agg> <op> <threshold>[/s] [over <seconds>s]

    cache.stale rate < 0.2/s over 30s
    daemon.crashes count == 0
    span.cpu.run.duration p95 < 50

``agg`` is one of ``rate`` (per-second counter rate, windowed when the
rule carries ``over``), ``count``/``value`` (counter total, or windowed
increase), ``p50``/``p90``/``p95``/``p99`` (histogram quantile, windowed
when a store is attached and ``over`` is given), ``mean`` and ``max``
(whole-run histogram aggregates).  Rules with no data (empty histogram,
absent series) yield a ``no data`` verdict that counts as passing —
missing telemetry is surfaced, never conflated with a numeric breach.
"""

from __future__ import annotations

import json
import operator
import re
from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .collector import Collector

_OPS = {
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
    "==": operator.eq,
    "!=": operator.ne,
}

_AGGS = ("rate", "count", "value", "mean", "max", "p50", "p90", "p95", "p99")

_RULE_RE = re.compile(
    r"^\s*(?P<metric>[A-Za-z0-9_.:-]+)"
    r"\s+(?P<agg>" + "|".join(_AGGS) + r")"
    r"\s*(?P<op><=|>=|==|!=|<|>)"
    r"\s*(?P<threshold>-?(?:\d+\.?\d*|\.\d+)(?:[eE]-?\d+)?)"
    r"(?P<per>/s)?"
    r"(?:\s+over\s+(?P<window>\d+\.?\d*)s)?\s*$"
)


class SloRuleError(ValueError):
    """A rule string that does not match the grammar."""


@dataclass(frozen=True)
class SloRule:
    """One objective: ``metric agg op threshold [over window]``."""

    name: str
    metric: str
    agg: str
    op: str
    threshold: float
    window: Optional[float] = None

    def __post_init__(self):
        if self.agg not in _AGGS:
            raise SloRuleError(f"slo {self.name}: unknown aggregate {self.agg!r}")
        if self.op not in _OPS:
            raise SloRuleError(f"slo {self.name}: unknown operator {self.op!r}")
        if self.window is not None and self.window <= 0:
            raise SloRuleError(
                f"slo {self.name}: window must be positive, got {self.window!r}")

    def expr(self) -> str:
        per = "/s" if self.agg == "rate" else ""
        over = f" over {self.window:g}s" if self.window is not None else ""
        return f"{self.metric} {self.agg} {self.op} {self.threshold:g}{per}{over}"

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "metric": self.metric,
            "agg": self.agg,
            "op": self.op,
            "threshold": self.threshold,
            "window": self.window,
            "expr": self.expr(),
        }


def parse_rule(text: str, name: Optional[str] = None) -> SloRule:
    """Parse one grammar line into an :class:`SloRule`."""
    match = _RULE_RE.match(text)
    if match is None:
        raise SloRuleError(
            f"unparseable SLO rule {text!r} "
            "(grammar: <metric> <agg> <op> <threshold>[/s] [over <N>s])")
    agg = match.group("agg")
    if match.group("per") and agg != "rate":
        raise SloRuleError(f"SLO rule {text!r}: '/s' only applies to rate")
    window = match.group("window")
    return SloRule(
        name=name or match.group("metric"),
        metric=match.group("metric"),
        agg=agg,
        op=match.group("op"),
        threshold=float(match.group("threshold")),
        window=float(window) if window is not None else None,
    )


def parse_rules(rules) -> tuple:
    """Parse a mixed sequence of rule strings and :class:`SloRule`\\ s.

    The convenience face declarative consumers use (the experiment
    registry's per-spec SLO lists, CLI ``--health-slo`` flags): already-
    parsed rules pass through untouched, strings go through
    :func:`parse_rule`.
    """
    return tuple(rule if isinstance(rule, SloRule) else parse_rule(rule)
                 for rule in rules)


@dataclass(frozen=True)
class SloVerdict:
    """One rule's evaluation: observed value vs. objective."""

    rule: SloRule
    observed: Optional[float]
    ok: bool
    note: str = ""

    def row(self) -> Tuple:
        shown = "-" if self.observed is None else f"{self.observed:.4g}"
        status = "ok" if self.ok else "BREACH"
        if self.note:
            status += f" ({self.note})"
        return (self.rule.name, self.rule.expr(), shown, status)

    def to_dict(self) -> dict:
        return {
            "rule": self.rule.to_dict(),
            "observed": self.observed,
            "ok": self.ok,
            "note": self.note,
        }


@dataclass
class SloReport:
    """All verdicts for one evaluation pass (deterministic per run)."""

    verdicts: List[SloVerdict]

    HEADERS = ("slo", "objective", "observed", "verdict")

    @property
    def ok(self) -> bool:
        return all(verdict.ok for verdict in self.verdicts)

    @property
    def breaches(self) -> List[SloVerdict]:
        return [verdict for verdict in self.verdicts if not verdict.ok]

    def describe(self) -> str:
        from ..core.report import render_table

        status = "ok" if self.ok else f"{len(self.breaches)} BREACHED"
        return render_table(
            self.HEADERS,
            [verdict.row() for verdict in self.verdicts],
            title=f"SLOs ({status})",
        )

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "breaches": len(self.breaches),
            "verdicts": [verdict.to_dict() for verdict in self.verdicts],
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)


#: The stock campaign objectives the dashboard evaluates.  ``crash-free``
#: is *expected* to breach on attack-bearing scenarios — that breach is
#: the alert the telemetry exists to raise.
DEFAULT_SLOS: Tuple[SloRule, ...] = (
    parse_rule("daemon.crashes count == 0", name="crash-free"),
    parse_rule("supervisor.start_limit count == 0", name="no-start-limit"),
    parse_rule("events.dropped count == 0", name="no-event-shedding"),
    parse_rule("cache.stale rate < 0.2/s over 30s", name="stale-serving"),
    parse_rule("span.cpu.run.duration p95 < 50", name="parse-latency"),
)

#: Harness-health objectives for the supervised sweep runner, evaluated
#: against the *sweep* collector (``repro chaos`` gates its exit on them).
#: Retries/timeouts/respawns are the supervisor doing its job — recovered
#: faults, surfaced but not gated; quarantined trials mean results are
#: missing, which is the one degradation a campaign must not ship silently.
SWEEP_SLOS: Tuple[SloRule, ...] = (
    parse_rule("sweep.quarantined count == 0", name="no-quarantined-trials"),
)


def _observe(rule: SloRule, collector: "Collector",
             at: Optional[float]) -> Tuple[Optional[float], str]:
    """The rule's observed value plus a provenance note."""
    store = collector.series
    registry = collector.metrics
    if rule.agg in ("count", "value"):
        if rule.window is not None and store is not None:
            windowed = store.delta(rule.metric, rule.window, at)
            if windowed is not None:
                return float(windowed), "windowed"
        return float(registry.value(rule.metric)), ""
    if rule.agg == "rate":
        window = rule.window
        if window is not None and store is not None:
            rate = store.rate(rule.metric, window, at)
            if rate is not None:
                return rate, "windowed"
        # Whole-run fallback: average rate over the simulated clock.
        value = registry.value(rule.metric)
        if collector.clock > 0:
            return value / collector.clock, "run-average"
        return (0.0 if value == 0 else float(value)), "clock-never-moved"
    if rule.agg.startswith("p"):
        q = int(rule.agg[1:]) / 100.0
        if rule.window is not None and store is not None:
            windowed = store.percentile(rule.metric, q, rule.window, at)
            if windowed is not None:
                return windowed, "windowed"
        histogram = registry._histograms.get(rule.metric)
        if histogram is None:
            return None, "no data"
        return histogram.percentile(q), "" if histogram.count else "no data"
    histogram = registry._histograms.get(rule.metric)
    if histogram is None or histogram.count == 0:
        return None, "no data"
    return (histogram.mean if rule.agg == "mean" else histogram.max), ""


def evaluate_slos(rules: Sequence[SloRule], collector: "Collector", *,
                  at: Optional[float] = None, emit: bool = True) -> SloReport:
    """Evaluate every rule; breaches become ``slo.breach`` trace events.

    ``at`` pins windowed queries to a moment in the recorded timeline
    (the dashboard's replay mode); ``emit=False`` suppresses the breach
    events and counters for such read-only passes.
    """
    verdicts: List[SloVerdict] = []
    for rule in rules:
        observed, note = _observe(rule, collector, at)
        if observed is None:
            verdicts.append(SloVerdict(rule, None, True, note or "no data"))
            continue
        ok = _OPS[rule.op](observed, rule.threshold)
        verdicts.append(SloVerdict(rule, observed, ok, note))
        if not ok and emit:
            collector.emit("slo", "slo.breach", rule=rule.name,
                           expr=rule.expr(), observed=round(observed, 6),
                           threshold=rule.threshold)
            collector.inc("slo.breaches")
    return SloReport(verdicts)
