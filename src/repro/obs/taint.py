"""Byte-level taint provenance: wire offset -> guest memory -> register -> PC.

The paper's core claim is a *data-flow* claim: specific attacker-controlled
bytes of a DNS reply travel through ``dnsproxy``'s name expansion into a
stack buffer and finally into the saved return address.  Spans prove the
stages happened and the profiler prices them, but neither attributes the
*bytes*.  This module closes that gap with a deterministic, opt-in taint
engine that has **zero outcome effect**:

* A **label** is a ``(source_id, wire_offset)`` pair — source ``N`` is the
  ``N``-th reply datagram the daemon parsed under this engine, and the
  offset indexes into that datagram's payload.
* Labels are seeded where the daemon copies wire bytes into guest memory
  (``dnsproxy._get_name`` expansion writes, ``GuestNameStore`` cache
  inserts) via ``AddressSpace.write(..., taint=...)``.
* A sparse :class:`ShadowMemory` hangs off the address space; per-register
  label sets live here.  Propagation through guest execution is done by
  per-arch ``propagate_taint`` hooks in :mod:`repro.cpu.x86.emu` and
  :mod:`repro.cpu.arm.emu`, driven from the emulator run loop (which falls
  back to per-step dispatch under taint, exactly like ``TraceRecorder``).
* Any write of tainted labels into the program counter is recorded as a
  **PC event** — the provenance chain's terminal link — and surfaces in
  ``CrashReport``, the ``repro taint`` CLI, the dashboard, and the
  ``taint.*`` metrics (which merge bit-identically across chaos workers).

Untainted writes *clear* shadow bytes they cover, so stale labels never
survive buffer reuse; an engine observes, it never perturbs — parity tests
pin taint-on/off outcomes byte-identical.
"""

from __future__ import annotations

import hashlib
import json
from typing import (Any, Dict, FrozenSet, Iterable, List, Optional,
                    Sequence, Tuple)

#: One taint label: ``(source_id, wire_offset)``.
Label = Tuple[int, int]
LabelSet = FrozenSet[Label]

#: The clean label set (shared; label sets are immutable).
NO_LABELS: LabelSet = frozenset()

_MASK32 = 0xFFFFFFFF

#: Schema tag for :meth:`TaintEngine.crash_summary` payloads.
TAINT_SCHEMA = "repro-taint/v1"


def payload_digest(payload: bytes) -> str:
    """Stable short digest linking a datagram payload to a taint source."""
    return hashlib.sha256(payload).hexdigest()[:16]


def group_offsets(labels: Iterable[Label]) -> Dict[int, List[int]]:
    """Group labels by source: ``{source_id: sorted wire offsets}``."""
    grouped: Dict[int, List[int]] = {}
    for source, offset in labels:
        grouped.setdefault(source, []).append(offset)
    return {source: sorted(offsets)
            for source, offsets in sorted(grouped.items())}


def format_offsets(offsets: Sequence[int]) -> str:
    """Render sorted offsets as compact runs: ``124..127, 200``."""
    runs: List[Tuple[int, int]] = []
    start: Optional[int] = None
    prev = 0
    for off in offsets:
        if start is None:
            start = prev = off
        elif off == prev + 1:
            prev = off
        else:
            runs.append((start, prev))
            start = prev = off
    if start is not None:
        runs.append((start, prev))
    return ", ".join(f"{lo}..{hi}" if hi > lo else f"{lo}"
                     for lo, hi in runs)


def format_labels(labels: Iterable[Label]) -> str:
    """``source 0 offsets 124..127; source 1 offsets 3`` (or ``clean``)."""
    grouped = group_offsets(labels)
    if not grouped:
        return "clean"
    return "; ".join(f"source {source} offsets {format_offsets(offsets)}"
                     for source, offsets in grouped.items())


def _grouped_json(labels: Iterable[Label]) -> Dict[str, List[int]]:
    """JSON-safe grouping (string source keys, offset lists)."""
    return {str(source): offsets
            for source, offsets in group_offsets(labels).items()}


def _labels_json(labels: Iterable[Label]) -> List[List[int]]:
    return [[source, offset] for source, offset in sorted(labels)]


class ShadowMemory:
    """Sparse per-byte label map shadowing one :class:`AddressSpace`.

    Only tainted bytes occupy storage; a byte absent from the map is
    clean.  The map is updated *before* the real segment write lands
    (mirroring the decode-cache invalidation ordering in
    ``AddressSpace.write``): a permission fault mid-span may leave a
    spurious label behind, which is harmless over-taint, while the
    reverse ordering could silently drop real taint.
    """

    __slots__ = ("_labels",)

    def __init__(self) -> None:
        self._labels: Dict[int, LabelSet] = {}

    def set_range(self, address: int, labels: Sequence[LabelSet]) -> None:
        """Install per-byte label sets starting at ``address``; an empty
        set in the sequence clears that byte."""
        store = self._labels
        for index, labelset in enumerate(labels):
            addr = (address + index) & _MASK32
            if labelset:
                store[addr] = labelset
            else:
                store.pop(addr, None)

    def clear_range(self, address: int, length: int) -> None:
        store = self._labels
        for index in range(length):
            store.pop((address + index) & _MASK32, None)

    def read(self, address: int, length: int) -> Tuple[LabelSet, ...]:
        store = self._labels
        return tuple(store.get((address + index) & _MASK32, NO_LABELS)
                     for index in range(length))

    def union(self, address: int, length: int) -> LabelSet:
        store = self._labels
        merged: set = set()
        for index in range(length):
            merged |= store.get((address + index) & _MASK32, NO_LABELS)
        return frozenset(merged)

    @property
    def live_bytes(self) -> int:
        """Number of currently-tainted guest bytes."""
        return len(self._labels)

    def tainted_runs(self, address: int, length: int) -> List[Tuple[int, int, LabelSet]]:
        """Contiguous tainted spans inside ``[address, address+length)`` as
        ``(absolute start, run length, union of labels)`` triples."""
        runs: List[Tuple[int, int, LabelSet]] = []
        store = self._labels
        start: Optional[int] = None
        merged: set = set()
        for index in range(length):
            addr = (address + index) & _MASK32
            labels = store.get(addr)
            if labels:
                if start is None:
                    start, merged = addr, set()
                merged |= labels
            elif start is not None:
                runs.append((start, ((address + index) & _MASK32) - start,
                             frozenset(merged)))
                start = None
        if start is not None:
            runs.append((start, ((address + length) & _MASK32) - start,
                         frozenset(merged)))
        return runs


class TaintEngine:
    """Deterministic taint tracker; attach via ``Collector.attach_taint``.

    One engine accumulates sources, seed records, and PC events across
    every process booted under its collector (each boot gets a fresh
    :class:`ShadowMemory` — the address space is per-boot — while the
    provenance record is cumulative, like the profiler's sample log).
    """

    def __init__(self) -> None:
        #: Back-reference set by ``Collector.attach_taint`` (may stay
        #: ``None`` for direct use; metrics/events are skipped then).
        self.collector = None
        #: Shadow map of the currently-attached process's memory.
        self.shadow: Optional[ShadowMemory] = None
        #: Most recently attached process (crash summaries default to it).
        self.process = None
        #: Per-register label sets (absent == clean), per attached process.
        self.reg_shadows: Dict[str, LabelSet] = {}
        #: Reply datagrams seen, in parse order; index == source id.
        self.sources: List[dict] = []
        #: Wire-byte -> guest-address copy records, in write order.
        self.seeds: List[dict] = []
        #: Tainted program-counter writes, in execution order.
        self.pc_events: List[dict] = []
        #: Derived-string labels (name read back from tainted memory).
        self.derived: Dict[str, Tuple[LabelSet, ...]] = {}
        self._source: Optional[int] = None
        self._propagate = None

    # -- wiring ---------------------------------------------------------------

    def attach_process(self, process) -> None:
        """Shadow ``process``: hang a fresh map off its address space,
        reset register shadows, and bind the arch propagation hook."""
        process.taint = self
        self.process = process
        self.shadow = ShadowMemory()
        process.memory.taint = self.shadow
        self.reg_shadows = {}
        if process.arch == "x86":
            from ..cpu.x86.emu import propagate_taint
        else:
            from ..cpu.arm.emu import propagate_taint
        self._propagate = propagate_taint

    def _inc(self, name: str, amount: int = 1) -> None:
        if self.collector is not None:
            self.collector.inc(name, amount)

    def _observe(self, name: str, value: float) -> None:
        if self.collector is not None:
            self.collector.observe(name, value)

    # -- sources and seeding --------------------------------------------------

    def begin_source(self, payload: bytes, *, note: str = "dns reply") -> int:
        """Open a taint source for one wire payload; subsequent
        :meth:`wire_labels` calls attribute to it until :meth:`end_source`."""
        source = len(self.sources)
        span_id = None
        if self.collector is not None:
            span_id = self.collector.tracer.current_id
        self.sources.append({
            "id": source,
            "bytes": len(payload),
            "digest": payload_digest(payload),
            "span_id": span_id,
            "note": note,
        })
        self._source = source
        self._inc("taint.sources")
        return source

    def end_source(self) -> None:
        """Close the open source and record the live-taint high-water mark."""
        self._source = None
        if self.shadow is not None:
            self._observe("taint.live_bytes", float(self.shadow.live_bytes))

    def wire_labels(self, wire_offset: int, length: int, *, address: int,
                    note: str = "") -> Optional[Tuple[LabelSet, ...]]:
        """Per-byte labels for copying ``length`` wire bytes starting at
        ``wire_offset`` to guest ``address``.  Returns ``None`` outside an
        open source (the write then *clears* shadow, which is correct for
        daemon-generated bytes)."""
        if self._source is None or length <= 0:
            return None
        source = self._source
        self.seeds.append({
            "source": source,
            "wire_offset": wire_offset,
            "length": length,
            "address": address & _MASK32,
            "note": note,
        })
        self._inc("taint.seeded_bytes", length)
        return tuple(frozenset(((source, wire_offset + index),))
                     for index in range(length))

    def register_derived(self, name: str, labels: Sequence[LabelSet]) -> None:
        """Remember per-character labels for a string the daemon rebuilt
        from (possibly tainted) guest memory, keyed case-insensitively."""
        key = name.lower()
        if any(labels):
            self.derived[key] = tuple(labels)
        else:
            self.derived.pop(key, None)

    def derived_labels(self, name: str) -> Optional[Tuple[LabelSet, ...]]:
        return self.derived.get(name.lower())

    # -- propagation ----------------------------------------------------------

    def step(self, process, insn, prev_regs: Dict[str, int]) -> None:
        """Propagate across one executed instruction.  ``prev_regs`` is a
        pre-step register snapshot: addresses (sp, bases) must be computed
        from the values the instruction *read*, not the ones it wrote."""
        if self._propagate is not None:
            self._propagate(self, process, insn, prev_regs)

    def reg_labels(self, name: str) -> LabelSet:
        return self.reg_shadows.get(name, NO_LABELS)

    def set_reg(self, name: str, labels: LabelSet) -> None:
        if labels:
            self.reg_shadows[name] = labels
        else:
            self.reg_shadows.pop(name, None)

    def note_pc_write(self, labels: LabelSet, *, pc: int, via: str,
                      address: Optional[int] = None) -> None:
        """Record a tainted program-counter write (no-op when clean)."""
        if not labels:
            return
        event = {
            "pc": pc & _MASK32,
            "via": via,
            "address": None if address is None else address & _MASK32,
            "labels": _labels_json(labels),
            "registers": {name: _labels_json(labelset)
                          for name, labelset in sorted(self.reg_shadows.items())
                          if labelset},
        }
        self.pc_events.append(event)
        self._inc("taint.pc_writes")
        if self.collector is not None:
            self.collector.emit("taint", "taint.pc", pc=event["pc"], via=via,
                                offsets=format_labels(labels))

    def on_native_return(self, process) -> None:
        """Model the return-to-caller a native (libc-model) call performs:
        x86 pops the return address off the stack, ARM moves lr into pc.
        Called *after* the native layer updated sp/pc."""
        if self.shadow is None:
            return
        if process.arch == "x86":
            self.set_reg("eax", NO_LABELS)
            slot = (process.sp - 4) & _MASK32
            labels = self.shadow.union(slot, 4)
            self.set_reg("eip", labels)
            self.note_pc_write(labels, pc=process.pc,
                               via="native return (pop eip)", address=slot)
        else:
            self.set_reg("r0", NO_LABELS)
            labels = self.reg_labels("r14")
            self.set_reg("r15", labels)
            self.note_pc_write(labels, pc=process.pc,
                               via="native return (mov pc, lr)")

    # -- queries and export ---------------------------------------------------

    def labels_at(self, address: int, length: int = 1) -> LabelSet:
        if self.shadow is None:
            return NO_LABELS
        return self.shadow.union(address, length)

    @property
    def seeded_bytes(self) -> int:
        return sum(seed["length"] for seed in self.seeds)

    def pc_sources(self) -> List[int]:
        """Source ids implicated in any tainted PC write, ascending."""
        implicated = {source for event in self.pc_events
                      for source, _offset in event["labels"]}
        return sorted(implicated)

    def datagram_reached_pc(self, payload: bytes) -> bool:
        """Did bytes of this exact payload land in the program counter?
        Matched by payload digest (span ids differ between the network's
        delivery span and the daemon's parse span)."""
        if not self.pc_events:
            return False
        digests = {self.sources[source]["digest"]
                   for source in self.pc_sources()
                   if 0 <= source < len(self.sources)}
        return payload_digest(payload) in digests

    def crash_summary(self, process=None, *, stack_start: Optional[int] = None,
                      stack_length: int = 0) -> dict:
        """The ``CrashReport``-embeddable summary (``repro-taint/v1``)."""
        process = process if process is not None else self.process
        pc_name = "eip" if process is not None and process.arch == "x86" else "r15"
        pc_labels = self.reg_labels(pc_name)
        stack: List[dict] = []
        if (self.shadow is not None and stack_start is not None
                and stack_length > 0):
            for start, length, labels in self.shadow.tainted_runs(
                    stack_start, stack_length):
                stack.append({"address": start, "length": length,
                              "offsets": _grouped_json(labels)})
        return {
            "version": TAINT_SCHEMA,
            "pc": (process.pc & _MASK32) if process is not None else 0,
            "pc_offsets": _grouped_json(pc_labels),
            "pc_writes": len(self.pc_events),
            "last_pc_event": self.pc_events[-1] if self.pc_events else None,
            "live_bytes": self.shadow.live_bytes if self.shadow else 0,
            "sources": [dict(source) for source in self.sources],
            "registers": {name: _grouped_json(labels)
                          for name, labels in sorted(self.reg_shadows.items())
                          if labels},
            "stack": stack,
        }

    def to_dict(self) -> dict:
        """Full provenance export (collector/dashboard JSON)."""
        return {
            "sources": [dict(source) for source in self.sources],
            "seeds": [dict(seed) for seed in self.seeds],
            "pc_events": [dict(event) for event in self.pc_events],
            "seeded_bytes": self.seeded_bytes,
            "live_bytes": self.shadow.live_bytes if self.shadow else 0,
        }


def coalesce_seeds(seeds: Sequence[dict]) -> List[dict]:
    """Merge adjacent seed records that extend each other contiguously in
    both wire offset and guest address (the expansion loop emits one
    record per length byte / label chunk; a linear copy coalesces to one
    run per name)."""
    merged: List[dict] = []
    for seed in seeds:
        if merged:
            last = merged[-1]
            if (last["source"] == seed["source"]
                    and last["wire_offset"] + last["length"] == seed["wire_offset"]
                    and last["address"] + last["length"] == seed["address"]):
                last["length"] += seed["length"]
                continue
        merged.append(dict(seed))
    return merged


def render_provenance(engine: TaintEngine) -> str:
    """Text chain: wire offset -> guest address -> register -> PC."""
    lines = [f"taint provenance: {len(engine.sources)} source(s), "
             f"{engine.seeded_bytes} byte(s) seeded, "
             f"{len(engine.pc_events)} tainted PC write(s)"]
    if not engine.sources:
        lines.append("  (no wire payloads were parsed under taint)")
        return "\n".join(lines)
    seeds_by_source: Dict[int, List[dict]] = {}
    for seed in coalesce_seeds(engine.seeds):
        seeds_by_source.setdefault(seed["source"], []).append(seed)
    for source in engine.sources:
        span = (f"span {source['span_id']}" if source["span_id"] is not None
                else "no span")
        lines.append(f"source {source['id']}: {source['bytes']}-byte "
                     f"{source['note']}, digest {source['digest']}, {span}")
        for seed in seeds_by_source.get(source["id"], []):
            end = seed["wire_offset"] + seed["length"] - 1
            note = f"  ({seed['note']})" if seed["note"] else ""
            lines.append(
                f"  wire[{seed['wire_offset']}..{end}] -> "
                f"mem[0x{seed['address']:08x}..0x{seed['address'] + seed['length'] - 1:08x}]"
                f"{note}")
    for event in engine.pc_events:
        where = (f" from [0x{event['address']:08x}]"
                 if event["address"] is not None else "")
        lines.append(f"PC <- 0x{event['pc']:08x} via {event['via']}{where}: "
                     f"{format_labels(tuple(map(tuple, event['labels'])))}")
        for name, labels in event["registers"].items():
            lines.append(f"    {name} = "
                         f"{format_labels(tuple(map(tuple, labels)))}")
    if not engine.pc_events:
        lines.append("no tainted PC writes observed")
    return "\n".join(lines)


def _expect(condition: bool, message: str) -> None:
    if not condition:
        raise ValueError(f"taint summary: {message}")


def _check_grouped(grouped: Any, where: str) -> int:
    _expect(isinstance(grouped, dict), f"{where} must be a dict")
    count = 0
    for source, offsets in grouped.items():
        _expect(isinstance(source, str) and source.lstrip("-").isdigit(),
                f"{where} keys must be stringified source ids")
        _expect(isinstance(offsets, list) and offsets == sorted(offsets),
                f"{where}[{source}] must be a sorted offset list")
        for offset in offsets:
            _expect(isinstance(offset, int) and not isinstance(offset, bool),
                    f"{where}[{source}] offsets must be ints")
            count += 1
    return count


def _check_label_pairs(labels: Any, where: str) -> int:
    _expect(isinstance(labels, list), f"{where} must be a list")
    for pair in labels:
        _expect(isinstance(pair, list) and len(pair) == 2
                and all(isinstance(part, int) and not isinstance(part, bool)
                        for part in pair),
                f"{where} entries must be [source, offset] int pairs")
    return len(labels)


def validate_taint_summary(payload: Any) -> int:
    """Strictly validate a ``repro-taint/v1`` summary (the postmortem's
    ``"taint"`` key).  Raises :class:`ValueError` naming the first
    violation; returns the number of label references checked."""
    _expect(isinstance(payload, dict), "payload must be a dict")
    _expect(payload.get("version") == TAINT_SCHEMA,
            f"version must be {TAINT_SCHEMA!r}")
    expected = {"version", "pc", "pc_offsets", "pc_writes", "last_pc_event",
                "live_bytes", "sources", "registers", "stack"}
    _expect(set(payload) == expected,
            f"keys must be exactly {sorted(expected)}")
    for key in ("pc", "pc_writes", "live_bytes"):
        value = payload[key]
        _expect(isinstance(value, int) and not isinstance(value, bool)
                and value >= 0, f"{key} must be a non-negative int")
    checked = _check_grouped(payload["pc_offsets"], "pc_offsets")
    event = payload["last_pc_event"]
    if payload["pc_writes"] == 0:
        _expect(event is None, "last_pc_event must be null with no PC writes")
    else:
        _expect(isinstance(event, dict), "last_pc_event must be a dict")
        _expect(set(event) == {"pc", "via", "address", "labels", "registers"},
                "last_pc_event keys")
        _expect(isinstance(event["pc"], int), "last_pc_event.pc must be int")
        _expect(isinstance(event["via"], str) and event["via"],
                "last_pc_event.via must be a non-empty string")
        _expect(event["address"] is None or isinstance(event["address"], int),
                "last_pc_event.address must be int or null")
        checked += _check_label_pairs(event["labels"], "last_pc_event.labels")
        _expect(event["labels"], "last_pc_event.labels must be non-empty")
        _expect(isinstance(event["registers"], dict),
                "last_pc_event.registers must be a dict")
        for name, labels in event["registers"].items():
            _expect(isinstance(name, str),
                    "last_pc_event.registers keys must be register names")
            checked += _check_label_pairs(
                labels, f"last_pc_event.registers[{name}]")
    _expect(isinstance(payload["sources"], list), "sources must be a list")
    for index, source in enumerate(payload["sources"]):
        _expect(isinstance(source, dict), f"sources[{index}] must be a dict")
        _expect(set(source) == {"id", "bytes", "digest", "span_id", "note"},
                f"sources[{index}] keys")
        _expect(source["id"] == index,
                f"sources[{index}].id must equal its position")
        _expect(isinstance(source["bytes"], int) and source["bytes"] > 0,
                f"sources[{index}].bytes must be a positive int")
        _expect(isinstance(source["digest"], str)
                and len(source["digest"]) == 16
                and all(ch in "0123456789abcdef" for ch in source["digest"]),
                f"sources[{index}].digest must be 16 hex chars")
        _expect(source["span_id"] is None or isinstance(source["span_id"], int),
                f"sources[{index}].span_id must be int or null")
        _expect(isinstance(source["note"], str),
                f"sources[{index}].note must be a string")
    _expect(isinstance(payload["registers"], dict), "registers must be a dict")
    for name, grouped in payload["registers"].items():
        _expect(isinstance(name, str), "registers keys must be register names")
        checked += _check_grouped(grouped, f"registers[{name}]")
    _expect(isinstance(payload["stack"], list), "stack must be a list")
    for index, run in enumerate(payload["stack"]):
        _expect(isinstance(run, dict), f"stack[{index}] must be a dict")
        _expect(set(run) == {"address", "length", "offsets"},
                f"stack[{index}] keys")
        _expect(isinstance(run["address"], int) and run["address"] >= 0,
                f"stack[{index}].address must be a non-negative int")
        _expect(isinstance(run["length"], int) and run["length"] > 0,
                f"stack[{index}].length must be a positive int")
        checked += _check_grouped(run["offsets"], f"stack[{index}].offsets")
    json.dumps(payload)  # must be serializable as-is
    return checked
