"""The structured event-trace bus.

One :class:`TraceEvent` is one thing that happened in the simulated
world — a packet crossing the wire, a fault verdict, a cache decision, a
daemon crash, an exploit stage transition — stamped with the collector's
simulated clock and a monotonic sequence number.  Nothing here touches
wall-clock time or unseeded randomness, so a trace is exactly as
deterministic as the run that produced it: same seed, same events,
byte-for-byte.

Event kinds are dotted ``category.verb`` strings; the taxonomy in use:

==========  =====================================================
category    kinds
==========  =====================================================
``net``     ``packet.tx`` ``packet.rx`` ``packet.drop``
            ``packet.dup``
``fault``   ``fault.drop`` ``fault.corrupt`` ``fault.truncate``
            ``fault.duplicate`` ``fault.delay`` ``fault.partition``
``cache``   ``cache.hit`` ``cache.miss`` ``cache.put``
            ``cache.evict`` ``cache.expire`` ``cache.stale``
            ``cache.flush``
``daemon``  ``daemon.boot`` ``daemon.restart`` ``daemon.crash``
            ``daemon.compromise`` ``supervisor.restart``
            ``supervisor.start_limit``
``dns``     ``forward.hit`` ``forward.upstream``
``exploit`` ``exploit.attempt`` ``exploit.lost`` ``exploit.crash``
            ``exploit.success`` ``exploit.halt``
==========  =====================================================

Events emitted while a :class:`~repro.obs.spans.Span` is open carry that
span's id in :attr:`TraceEvent.span`, correlating the flat stream with
the causal span tree without changing the detail payload.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional


@dataclass(frozen=True)
class TraceEvent:
    """One structured, simulated-clock-stamped occurrence."""

    seq: int
    time: float
    category: str
    kind: str
    detail: Dict[str, Any] = field(default_factory=dict)
    #: Id of the span that was open when the event fired (causal link).
    span: Optional[int] = None

    def to_dict(self) -> dict:
        exported = {
            "seq": self.seq,
            "time": round(self.time, 6),
            "category": self.category,
            "kind": self.kind,
            "detail": dict(self.detail),
        }
        if self.span is not None:
            exported["span"] = self.span
        return exported

    def describe(self) -> str:
        bits = " ".join(f"{key}={value}" for key, value in self.detail.items())
        if self.span is not None:
            bits = f"{bits} span=#{self.span}".strip()
        return f"#{self.seq:<5} t={self.time:<8.1f} [{self.category}] {self.kind} {bits}".rstrip()


class EventBus:
    """Append-only trace of :class:`TraceEvent`\\ s with live subscribers.

    The bus never generates its own timestamps; callers pass the
    simulated ``time`` (usually :attr:`Collector.clock`).  A ``limit``
    bounds memory on long runs — the bus keeps the *most recent*
    ``limit`` events and counts what it sheds in ``dropped``.
    """

    def __init__(self, limit: int = 100_000):
        self.limit = limit
        self.events: List[TraceEvent] = []
        self.dropped = 0
        self._seq = 0
        self._subscribers: List[Callable[[TraceEvent], None]] = []

    def emit(self, category: str, kind: str, time: float = 0.0,
             span: Optional[int] = None, **detail: Any) -> TraceEvent:
        event = TraceEvent(seq=self._seq, time=time, category=category,
                           kind=kind, detail=detail, span=span)
        self._seq += 1
        self.events.append(event)
        if len(self.events) > self.limit:
            overflow = len(self.events) - self.limit
            del self.events[:overflow]
            self.dropped += overflow
        for subscriber in self._subscribers:
            subscriber(event)
        return event

    def subscribe(self, callback: Callable[[TraceEvent], None]) -> None:
        self._subscribers.append(callback)

    # -- queries ----------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.events)

    def by_category(self, category: str) -> List[TraceEvent]:
        return [event for event in self.events if event.category == category]

    def by_kind(self, kind: str) -> List[TraceEvent]:
        return [event for event in self.events if event.kind == kind]

    def kinds(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for event in self.events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts

    # -- export -----------------------------------------------------------------

    def _tail(self, last: Optional[int]) -> List[TraceEvent]:
        """The last ``last`` events; ``None`` means all, 0 means none.

        A negative count is rejected loudly (mirroring the collector's
        ``advance`` guard) rather than silently aliasing into Python's
        negative-index slicing.
        """
        if last is None:
            return self.events
        if last < 0:
            raise ValueError(f"event tail length cannot be negative: {last!r}")
        return self.events[-last:] if last else []

    def to_dicts(self, last: Optional[int] = None) -> List[dict]:
        return [event.to_dict() for event in self._tail(last)]

    def to_json(self, last: Optional[int] = None, indent: int = 2) -> str:
        return json.dumps(self.to_dicts(last), indent=indent)

    def describe(self, last: Optional[int] = None) -> str:
        return "\n".join(event.describe() for event in self._tail(last))
