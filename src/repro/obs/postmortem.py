"""Structured crash forensics for the simulated victim.

On real embedded targets the paper's crash triage is the hard part —
Abbasi et al. (PAPERS.md) call out the missing postmortem substrate on
deeply embedded systems: no core dumps, no ptrace, often not even a
serial console.  Our victim is simulated, so we can capture what the
device cannot: the faulting program counter, the full register file, a
stack window around SP, a best-effort return-address walk, the segment
map with permissions, and — through the span tracer — the causal chain
back to the exact datagram whose bytes killed the process.

A :class:`CrashReport` is captured at the crash site (the emulator's
fault path or the daemon's parse path), recorded on the collector, and
attached to the ``daemon.crash`` event's detail, so a flat event trace
alone is enough to answer "which packet caused this crash".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from .spans import snapshot_payload
from .taint import format_offsets

#: Stack bytes captured below/above SP (clipped to the mapped segment).
STACK_WINDOW_BEFORE = 32
STACK_WINDOW_AFTER = 96
#: Words scanned upward from SP for the return-address walk.
RETURN_WALK_WORDS = 64


@dataclass
class CrashReport:
    """Everything a triager needs from one guest crash."""

    process_name: str
    arch: str
    pid: int
    signal: Optional[str]
    reason: str
    pc: int
    sp: int
    pc_disasm: str
    registers: Dict[str, int] = field(default_factory=dict)
    #: Base address + hex bytes of the captured stack window.
    stack_base: int = 0
    stack_hex: str = ""
    #: Stack words that point into executable segments: candidate saved
    #: return addresses (or the attacker's chain), innermost first.
    return_walk: List[Dict[str, Any]] = field(default_factory=list)
    #: ``/proc/<pid>/maps`` equivalent at the time of death.
    segments: List[Dict[str, Any]] = field(default_factory=list)
    #: Causal link: the innermost span that carried wire bytes (usually
    #: ``daemon.parse`` or ``net.deliver``) and the path down to it.
    span_id: Optional[int] = None
    span_path: List[str] = field(default_factory=list)
    #: Hex snapshot of the offending datagram (capped like span payloads).
    datagram_hex: Optional[str] = None
    #: Taint provenance summary (``repro-taint/v1``; see
    #: :func:`repro.obs.taint.validate_taint_summary`) when the process
    #: died under an attached taint engine; ``None`` otherwise.
    taint: Optional[dict] = None

    def to_dict(self) -> dict:
        return {
            "process": self.process_name,
            "arch": self.arch,
            "pid": self.pid,
            "signal": self.signal,
            "reason": self.reason,
            "pc": self.pc,
            "sp": self.sp,
            "pc_disasm": self.pc_disasm,
            "registers": dict(self.registers),
            "stack_base": self.stack_base,
            "stack_hex": self.stack_hex,
            "return_walk": [dict(entry) for entry in self.return_walk],
            "segments": [dict(entry) for entry in self.segments],
            "span_id": self.span_id,
            "span_path": list(self.span_path),
            "datagram_hex": self.datagram_hex,
            "taint": self.taint,
        }

    def render(self) -> str:
        """gdb-style text postmortem."""
        lines = [
            f"crash postmortem: {self.process_name} (pid {self.pid}, {self.arch})",
            f"  signal : {self.signal or '?'} — {self.reason}",
            f"  pc     : {self.pc:#010x}  {self.pc_disasm}",
            f"  sp     : {self.sp:#010x}",
            "  registers:",
        ]
        names = sorted(self.registers)
        for row_start in range(0, len(names), 4):
            row = names[row_start : row_start + 4]
            lines.append(
                "    " + "  ".join(f"{name:>5}={self.registers[name]:08x}" for name in row)
            )
        if self.stack_hex:
            lines.append(f"  stack [{self.stack_base:#010x}, +{len(self.stack_hex) // 2}):")
            data = bytes.fromhex(self.stack_hex)
            for offset in range(0, len(data), 16):
                chunk = data[offset : offset + 16]
                lines.append(
                    f"    {self.stack_base + offset:#010x}  {chunk.hex(' ')}"
                )
        if self.return_walk:
            lines.append("  return-address walk (stack words into X segments):")
            for entry in self.return_walk:
                lines.append(
                    f"    [sp+{entry['offset']:#05x}] {entry['value']:#010x} "
                    f"-> {entry['segment']}"
                )
        lines.append("  segment map:")
        for seg in self.segments:
            lines.append(
                f"    {seg['base']:08x}-{seg['end']:08x} {seg['perm']} {seg['name']}"
            )
        if self.taint is not None:
            grouped = self.taint.get("pc_offsets", {})
            if grouped:
                described = "; ".join(
                    f"source {source} offsets {format_offsets(offsets)}"
                    for source, offsets in sorted(
                        grouped.items(), key=lambda kv: int(kv[0])))
                lines.append(f"  PC tainted by payload offsets [{described}]")
            else:
                lines.append("  PC not tainted by payload bytes")
            event = self.taint.get("last_pc_event")
            if event is not None:
                slot = (f" from [{event['address']:#010x}]"
                        if event.get("address") is not None else "")
                lines.append(
                    f"    last tainted PC write: {event['pc']:#010x} "
                    f"via {event['via']}{slot}")
            for run in self.taint.get("stack", []):
                described = "; ".join(
                    f"source {source} offsets {format_offsets(offsets)}"
                    for source, offsets in sorted(
                        run["offsets"].items(), key=lambda kv: int(kv[0])))
                lines.append(
                    f"    tainted stack bytes [{run['address']:#010x}, "
                    f"+{run['length']}): {described}")
        if self.span_path:
            lines.append(f"  causal span : #{self.span_id} via {' > '.join(self.span_path)}")
        if self.datagram_hex is not None:
            lines.append(
                f"  offending datagram ({len(self.datagram_hex) // 2} bytes): "
                f"{self.datagram_hex[:96]}{'…' if len(self.datagram_hex) > 96 else ''}"
            )
        return "\n".join(lines)


def _disassemble_at(process, address: int) -> str:
    """Best-effort disassembly of the faulting location (mirrors the
    emulator's trace peek; never raises)."""
    try:
        memory = process.memory
        if process.arch == "x86":
            from ..cpu.x86.disasm import decode

            window = memory.read(
                address, memory.contiguous_span(address, 5), check=False
            )
            return decode(window, address, strict=False).text()
        from ..cpu.arm.disasm import decode

        window = memory.read(address, 4, check=False)
        return decode(window, address, strict=False).text()
    except Exception:
        return "(unmapped or undecodable)"


def _stack_window(process) -> tuple:
    """Bytes around SP, clipped to the segment SP lives in."""
    try:
        segment = process.memory.segment_at(process.sp)
    except Exception:
        return process.sp, b""
    start = max(segment.base, process.sp - STACK_WINDOW_BEFORE)
    end = min(segment.end, process.sp + STACK_WINDOW_AFTER)
    return start, process.memory.read(start, end - start, check=False)


def _return_walk(process) -> List[Dict[str, Any]]:
    """Scan stack words upward from SP for executable-segment pointers."""
    from ..mem.perms import Perm

    walk: List[Dict[str, Any]] = []
    memory = process.memory
    executable = [seg for seg in memory.segments() if Perm.X in seg.perm]
    for index in range(RETURN_WALK_WORDS):
        slot = (process.sp + 4 * index) & 0xFFFFFFFF
        if not memory.is_mapped(slot, 4):
            break
        value = int.from_bytes(memory.read(slot, 4, check=False), "little")
        for seg in executable:
            if seg.contains(value):
                walk.append(
                    {"offset": 4 * index, "slot": slot, "value": value,
                     "segment": seg.name}
                )
                break
    return walk


def capture_crash_report(
    process,
    *,
    signal: Optional[str],
    reason: str,
    tracer=None,
    datagram: Optional[bytes] = None,
) -> CrashReport:
    """Snapshot a dead (or dying) process into a :class:`CrashReport`.

    ``tracer`` links the report to the innermost open span carrying wire
    bytes; ``datagram`` overrides/sets the offending-bytes snapshot when
    the caller knows them directly (the daemon's parse path does).
    """
    stack_base, stack_bytes = _stack_window(process)
    report = CrashReport(
        process_name=process.name,
        arch=process.arch,
        pid=process.pid,
        signal=signal,
        reason=reason,
        pc=process.pc,
        sp=process.sp,
        pc_disasm=_disassemble_at(process, process.pc),
        registers=process.registers.snapshot(),
        stack_base=stack_base,
        stack_hex=stack_bytes.hex(),
        return_walk=_return_walk(process),
        segments=[
            {"name": seg.name, "base": seg.base, "end": seg.end,
             "perm": seg.perm.describe()}
            for seg in process.memory.segments()
        ],
    )
    engine = getattr(process, "taint", None)
    if engine is not None:
        report.taint = engine.crash_summary(
            process, stack_start=stack_base, stack_length=len(stack_bytes))
    if tracer is not None:
        carrier = tracer.nearest_payload_span()
        if carrier is not None:
            report.span_id = carrier.span_id
            report.span_path = tracer.path(carrier.span_id)
            report.datagram_hex = carrier.attrs.get("payload")
        else:
            report.span_id = tracer.current_id
            report.span_path = tracer.path()
    if datagram is not None:
        report.datagram_hex = snapshot_payload(datagram)
    return report
