"""Deterministic profiling: per-opcode/per-block cost attribution and
guest flamegraphs over the simulated clock.

The decode cache (PR 3) and superblock translation (PR 7) made the
emulator faster, but only in aggregate — nothing said *where* the
remaining cycles go.  This layer attributes simulated cost with zero
effect on outcomes, the same contract every other ``observer=`` hook
honors:

* **Per-opcode attribution** — each completed guest instruction costs
  exactly one step-budget unit, so an opcode's "cost" is its step count
  and its share of the run's budget.  Native (libc model) invocations
  cost one unit too and appear as ``native:<name>`` lines, which makes
  the profiler's summed step count equal the run loop's ``steps`` and
  the benchmark harness's ``step_timer.count`` on the same run.
* **Per-address heat** — how often each guest pc executed (the map a
  JIT-threshold or trace-selection heuristic would consume).
* **Per-superblock economics** — dispatches, executed steps, and
  rebuild count per block entry, so compile cost can be amortized
  against execution (``steps / builds``).
* **Cache attribution** — the same decode/block cache deltas the run
  loop flushes into observer counters, recorded per cause (per-entry
  page-generation invalidation vs whole-cache mapping-epoch flush vs
  native-registration flush) so the profiler lines reconcile exactly
  with the ``decode_cache_*`` / ``block_cache_*`` counters.
* **Guest stack samples** — every ``sample_interval`` completed steps
  the profiler reuses the postmortem return-address walk to capture the
  guest call stack, symbolizes it through the loader's symbol tables
  *at sample time* (ASLR re-randomizes per boot, so addresses are
  resolved while the mapping that produced them is live), and folds it
  into flamegraph.pl-compatible text and speedscope JSON.

Determinism model
-----------------

Sampling is counted in *completed guest steps*, and the counter is
reset at every run-loop entry, so sample points are a pure function of
the workload.  Block dispatch **stays enabled** under profiling (unlike
``step_timer``, which needs per-step wall timings and forces the
per-instruction path): a compiled block carries its mnemonic/address
line, the run loop reports how many of its instructions completed, and
the profiler sums them into the same per-opcode lines single-stepping
would produce.  The one interaction is :meth:`~DeterministicProfiler.
admits_block` — a block that would *cross* a sample boundary is
declined, so the run loop single-steps up to the boundary and every
sample observes the exact architectural state the per-step path would
have had.  Folded stacks and opcode tables are therefore byte-identical
with blocks on or off, and profiled runs are outcome-bit-identical to
unprofiled runs.

Worker merge mirrors :meth:`~repro.obs.spans.Tracer.adopt`: workers
ship a picklable :class:`ProfileData` snapshot and the parent folds
them in task order — pure counter addition, so a ``workers=N`` sweep's
merged profile is byte-identical to the sequential sweep's.

Wall-clock correlation is a *separate*, opt-in harness layer
(:class:`WallClockProfiler`), never merged into :class:`ProfileData` —
the same split PR 6 made between deterministic results artifacts and
wall-dependent sweep telemetry.
"""

from __future__ import annotations

import json
from time import perf_counter
from typing import Any, Dict, List, Optional, Tuple

from .postmortem import _return_walk

PROFILE_SCHEMA = "repro-profile/v1"
WALL_SCHEMA = "repro-wallclock/v1"

#: Default stack-sampling period, in completed guest steps.  Prime, so
#: sample points do not phase-lock with loop bodies or block lengths,
#: and small enough that the canonical attack scenario's short guest
#: runs (~90 steps of injected payload) still collect samples.
DEFAULT_SAMPLE_INTERVAL = 23

#: Heat-map and block-table rows kept in exports (full maps stay in
#: memory; exports cap so campaign artifacts stay small).
EXPORT_LIMIT = 64

#: The stable cache-attribution line names, in export order.  They are
#: exactly the observer counters the run loop flushes, so a test can
#: assert ``profiler.data.cache[name] == collector.metrics[name]``.
CACHE_LINES = (
    "decode_cache_hits",
    "decode_cache_misses",
    "decode_cache_invalidations",
    "decode_cache_epoch_flushes",
    "block_cache_hits",
    "block_cache_misses",
    "block_cache_invalidations",
    "block_cache_epoch_flushes",
    "block_cache_native_flushes",
)


class ProfileData:
    """The attribution state: plain picklable counters, adopt()-mergeable.

    Everything is a sum, so merging worker snapshots in task order is
    associative and reproduces the sequential profile exactly.
    """

    def __init__(self, sample_interval: int = 0):
        self.sample_interval = sample_interval
        #: mnemonic (or ``native:<name>``) -> completed steps.
        self.opcodes: Dict[str, int] = {}
        #: guest address -> times an instruction at it completed.
        self.heat: Dict[int, int] = {}
        #: block entry address -> {"length", "dispatches", "steps", "builds"}.
        self.blocks: Dict[int, Dict[str, int]] = {}
        #: cache-attribution lines (see :data:`CACHE_LINES`).
        self.cache: Dict[str, int] = {}
        #: folded guest stack (outermost-first frame names) -> samples.
        self.samples: Dict[Tuple[str, ...], int] = {}
        self.sample_count = 0
        self.steps = 0
        self.native_steps = 0
        self.block_steps = 0
        self.runs = 0

    # -- merge -----------------------------------------------------------------

    def merge(self, other: "ProfileData") -> None:
        """Fold another profile in (pure counter addition)."""
        if other.sample_interval != self.sample_interval:
            raise ValueError(
                f"profile merge: sample_interval mismatch "
                f"{other.sample_interval} != {self.sample_interval}")
        for name, count in other.opcodes.items():
            self.opcodes[name] = self.opcodes.get(name, 0) + count
        for address, count in other.heat.items():
            self.heat[address] = self.heat.get(address, 0) + count
        for entry, stats in other.blocks.items():
            mine = self.blocks.get(entry)
            if mine is None:
                self.blocks[entry] = dict(stats)
            else:
                mine["length"] = stats["length"]
                for key in ("dispatches", "steps", "builds"):
                    mine[key] += stats[key]
        for name, count in other.cache.items():
            self.cache[name] = self.cache.get(name, 0) + count
        for stack, count in other.samples.items():
            self.samples[stack] = self.samples.get(stack, 0) + count
        self.sample_count += other.sample_count
        self.steps += other.steps
        self.native_steps += other.native_steps
        self.block_steps += other.block_steps
        self.runs += other.runs

    def copy(self) -> "ProfileData":
        """Deep-enough copy for shipping across a worker boundary."""
        data = ProfileData(self.sample_interval)
        data.opcodes = dict(self.opcodes)
        data.heat = dict(self.heat)
        data.blocks = {entry: dict(stats) for entry, stats in self.blocks.items()}
        data.cache = dict(self.cache)
        data.samples = dict(self.samples)
        data.sample_count = self.sample_count
        data.steps = self.steps
        data.native_steps = self.native_steps
        data.block_steps = self.block_steps
        data.runs = self.runs
        return data

    # -- tables ----------------------------------------------------------------

    def opcode_table(self, top: Optional[int] = None) -> List[Tuple[str, int]]:
        """(mnemonic, steps) rows, hottest first; ties break lexically."""
        rows = sorted(self.opcodes.items(), key=lambda kv: (-kv[1], kv[0]))
        return rows[:top] if top is not None else rows

    def hot_addresses(self, top: Optional[int] = None) -> List[Tuple[int, int]]:
        rows = sorted(self.heat.items(), key=lambda kv: (-kv[1], kv[0]))
        return rows[:top] if top is not None else rows

    def block_table(self, top: Optional[int] = None) -> List[Dict[str, int]]:
        """Per-block economics, hottest (most executed steps) first."""
        rows = [
            {"entry": entry, **stats}
            for entry, stats in sorted(
                self.blocks.items(), key=lambda kv: (-kv[1]["steps"], kv[0]))
        ]
        return rows[:top] if top is not None else rows

    # -- export ----------------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "schema": PROFILE_SCHEMA,
            "sample_interval": self.sample_interval,
            "steps": self.steps,
            "native_steps": self.native_steps,
            "block_steps": self.block_steps,
            "runs": self.runs,
            "opcodes": {name: count for name, count in self.opcode_table()},
            "heat": [
                {"address": address, "count": count}
                for address, count in self.hot_addresses(EXPORT_LIMIT)
            ],
            "heat_sites": len(self.heat),
            "blocks": self.block_table(EXPORT_LIMIT),
            "blocks_total": len(self.blocks),
            "cache": {
                name: self.cache.get(name, 0)
                for name in CACHE_LINES if name in self.cache
            },
            "sample_count": self.sample_count,
            "samples": {
                ";".join(stack): count
                for stack, count in sorted(self.samples.items())
            },
        }


class DeterministicProfiler:
    """Attach to a :class:`~repro.obs.Collector` (``attach_profiler``) or
    directly to a ``Process`` (``process.profiler``); the run loop feeds
    it.  Purely read-only over guest state: profiled runs are
    outcome-bit-identical to unprofiled runs."""

    def __init__(self, *, sample_interval: int = DEFAULT_SAMPLE_INTERVAL):
        if sample_interval < 0:
            raise ValueError(
                f"sample_interval cannot be negative: {sample_interval!r}")
        self.sample_interval = sample_interval
        self.data = ProfileData(sample_interval)
        self._since = 0
        self._tables: Tuple = ()

    # -- symbolization ---------------------------------------------------------

    def register_symbols(self, loaded) -> None:
        """Adopt a freshly-booted image's symbol tables.

        Called by the daemon on every (re)boot: ASLR re-slides libc per
        boot, so samples must resolve against the tables of the mapping
        they were taken under — which is why symbolization happens at
        sample time, not at export time.
        """
        self._tables = (loaded.binary.symbols, loaded.libc.symbols)

    def _symbolize(self, process, address: int) -> str:
        native = process.native_at(address)
        if native is not None:
            name = getattr(native, "name", None)
            return name if name else f"native@{address:#x}"
        try:
            segment = process.memory.segment_at(address)
        except Exception:
            segment = None
        best = None
        for table in self._tables:
            symbol = table.resolve(address)
            if symbol is None:
                continue
            if segment is not None and symbol.address < segment.base:
                # Size-0 symbols resolve as "closest preceding" with no
                # upper bound; a symbol from a lower segment must not
                # claim this address (e.g. a .text function "covering"
                # an injected-payload pc on the stack).
                continue
            if best is None or symbol.address > best.address:
                best = symbol
        if best is not None:
            return best.name
        if segment is not None:
            return segment.name
        return f"{address:#x}"

    # -- run-loop hooks --------------------------------------------------------

    def begin_run(self) -> None:
        """Run-loop entry: reset the sampling phase.

        Sample points become a pure function of each run's step count,
        which is what makes a ``workers=N`` sweep's per-point profiles
        merge byte-identical to the sequential sweep's accumulation.
        """
        self._since = 0
        self.data.runs += 1

    def end_run(self, process) -> None:
        """Run-loop exit: flush one final sample if steps ran since the
        last boundary (the run-end analog of ``Collector.sample()``).

        Guest state at run exit is pinned identical with blocks on or
        off, so the flush sample is too — and short runs (the 12-step
        ARM payload) still contribute at least one stack.
        """
        if self.sample_interval and self._since:
            self._since = 0
            self._take_sample(process)

    def admits_block(self, length: int) -> bool:
        """May a whole block of ``length`` instructions run before the
        next sample boundary?  A block that would cross it is declined —
        the run loop single-steps instead, so the sample is taken at the
        exact architectural state the per-step path produces."""
        return (self.sample_interval == 0
                or self._since + length <= self.sample_interval)

    def record_insn(self, process, insn) -> None:
        """One interpreter-path instruction completed."""
        data = self.data
        data.steps += 1
        mnemonic = insn.mnemonic
        data.opcodes[mnemonic] = data.opcodes.get(mnemonic, 0) + 1
        address = insn.address
        data.heat[address] = data.heat.get(address, 0) + 1
        if self.sample_interval:
            self._since += 1
            if self._since >= self.sample_interval:
                self._since = 0
                self._take_sample(process)

    def record_native(self, process, native, address: int) -> None:
        """One native (libc model) invocation completed (one step unit)."""
        data = self.data
        data.steps += 1
        data.native_steps += 1
        name = "native:" + (getattr(native, "name", None) or "?")
        data.opcodes[name] = data.opcodes.get(name, 0) + 1
        data.heat[address] = data.heat.get(address, 0) + 1
        if self.sample_interval:
            self._since += 1
            if self._since >= self.sample_interval:
                self._since = 0
                self._take_sample(process)

    def record_block(self, process, block, executed: int) -> None:
        """A block dispatch completed ``executed`` of its instructions.

        Summed into the same per-opcode/per-address lines the per-step
        path produces.  ``admits_block`` guaranteed no sample boundary
        falls strictly inside the block, so at most the *final*
        instruction lands on one — at which point guest state is exactly
        the per-step state after that instruction.
        """
        data = self.data
        stats = data.blocks.get(block.entry)
        if stats is None:
            stats = data.blocks[block.entry] = {
                "length": block.length, "dispatches": 0, "steps": 0,
                "builds": 0,
            }
        stats["length"] = block.length
        stats["dispatches"] += 1
        stats["steps"] += executed
        data.steps += executed
        data.block_steps += executed
        opcodes = data.opcodes
        heat = data.heat
        mnemonics = block.mnemonics
        addresses = block.addresses
        for index in range(executed):
            mnemonic = mnemonics[index]
            opcodes[mnemonic] = opcodes.get(mnemonic, 0) + 1
            address = addresses[index]
            heat[address] = heat.get(address, 0) + 1
        if self.sample_interval:
            self._since += executed
            if self._since >= self.sample_interval:
                self._since = 0
                self._take_sample(process)

    def record_build(self, block) -> None:
        """A block was (re)compiled: charge its entry's amortization line."""
        stats = self.data.blocks.get(block.entry)
        if stats is None:
            stats = self.data.blocks[block.entry] = {
                "length": block.length, "dispatches": 0, "steps": 0,
                "builds": 0,
            }
        stats["length"] = block.length
        stats["builds"] += 1

    def record_cache(self, deltas: Dict[str, int]) -> None:
        """Run-loop exit: fold in this run's cache-counter deltas."""
        cache = self.data.cache
        for name, delta in deltas.items():
            cache[name] = cache.get(name, 0) + delta

    def _take_sample(self, process) -> None:
        frames = [
            self._symbolize(process, entry["value"])
            for entry in reversed(_return_walk(process))
        ]
        frames.append(self._symbolize(process, process.pc))
        stack = tuple(frames)
        self.data.samples[stack] = self.data.samples.get(stack, 0) + 1
        self.data.sample_count += 1

    # -- merge / export --------------------------------------------------------

    def snapshot(self) -> ProfileData:
        """Picklable copy for shipping from a sweep worker to the parent."""
        return self.data.copy()

    def adopt(self, data: ProfileData) -> None:
        """Fold a worker's snapshot in (task order ⇒ sequential-identical)."""
        self.data.merge(data)

    def folded(self) -> str:
        return folded_stacks(self.data)

    def speedscope(self, *, name: str = "repro profile") -> dict:
        return speedscope_document(self.data, name=name)

    def to_dict(self) -> dict:
        return self.data.to_dict()


# -- flamegraph exports --------------------------------------------------------


def folded_stacks(data: ProfileData) -> str:
    """flamegraph.pl-compatible folded text: ``frame;frame;leaf count``.

    Lines are sorted lexically by stack, so two equal profiles render
    byte-identical text regardless of accumulation order.
    """
    lines = [
        f"{';'.join(stack)} {count}"
        for stack, count in sorted(data.samples.items())
    ]
    return "\n".join(lines) + ("\n" if lines else "")


def speedscope_document(data: ProfileData, *,
                        name: str = "repro profile") -> dict:
    """A speedscope.app sampled-profile document (file-format-schema)."""
    frame_index: Dict[str, int] = {}
    frames: List[Dict[str, str]] = []
    samples: List[List[int]] = []
    weights: List[int] = []
    for stack, count in sorted(data.samples.items()):
        indices = []
        for frame in stack:
            index = frame_index.get(frame)
            if index is None:
                index = frame_index[frame] = len(frames)
                frames.append({"name": frame})
            indices.append(index)
        samples.append(indices)
        weights.append(count)
    return {
        "$schema": "https://www.speedscope.app/file-format-schema.json",
        "shared": {"frames": frames},
        "profiles": [
            {
                "type": "sampled",
                "name": name,
                "unit": "none",
                "startValue": 0,
                "endValue": sum(weights),
                "samples": samples,
                "weights": weights,
            }
        ],
        "exporter": "repro profile",
        "activeProfileIndex": 0,
    }


def validate_speedscope(payload: Any) -> int:
    """Schema check for the speedscope documents we emit.

    Returns the total sample count; raises :class:`ValueError` naming
    the first violation.  CI runs every exported document through it.
    """
    if not isinstance(payload, dict):
        raise ValueError("speedscope: top level must be an object")
    if payload.get("$schema") != "https://www.speedscope.app/file-format-schema.json":
        raise ValueError("speedscope: missing/unknown $schema")
    shared = payload.get("shared")
    if not isinstance(shared, dict) or not isinstance(shared.get("frames"), list):
        raise ValueError("speedscope: 'shared.frames' must be an array")
    frames = shared["frames"]
    for index, frame in enumerate(frames):
        if not isinstance(frame, dict) or not isinstance(frame.get("name"), str):
            raise ValueError(f"speedscope: frame #{index} must have a string name")
    profiles = payload.get("profiles")
    if not isinstance(profiles, list) or not profiles:
        raise ValueError("speedscope: 'profiles' must be a non-empty array")
    total = 0
    for pindex, profile in enumerate(profiles):
        if not isinstance(profile, dict) or profile.get("type") != "sampled":
            raise ValueError(f"speedscope: profile #{pindex} must be sampled")
        samples = profile.get("samples")
        weights = profile.get("weights")
        if not isinstance(samples, list) or not isinstance(weights, list):
            raise ValueError(
                f"speedscope: profile #{pindex} samples/weights must be arrays")
        if len(samples) != len(weights):
            raise ValueError(
                f"speedscope: profile #{pindex} has {len(samples)} samples "
                f"but {len(weights)} weights")
        for sindex, stack in enumerate(samples):
            if not isinstance(stack, list):
                raise ValueError(
                    f"speedscope: profile #{pindex} sample #{sindex} "
                    f"must be an array of frame indices")
            for frame in stack:
                if not isinstance(frame, int) or not 0 <= frame < len(frames):
                    raise ValueError(
                        f"speedscope: profile #{pindex} sample #{sindex} "
                        f"frame index {frame!r} out of range")
        if profile.get("endValue") != sum(weights):
            raise ValueError(
                f"speedscope: profile #{pindex} endValue must equal the "
                f"weight sum")
        total += len(samples)
    json.dumps(payload)  # must be serializable end to end
    return total


# -- text report ---------------------------------------------------------------


def render_profile(data: ProfileData, *, top: int = 10) -> str:
    """Deterministic text report: opcode/block/cache attribution tables."""
    lines = [
        f"deterministic profile: {data.steps} steps "
        f"({data.block_steps} via blocks, {data.native_steps} native, "
        f"{data.runs} runs)",
    ]
    total = data.steps or 1
    rows = data.opcode_table(top)
    if rows:
        lines.append(f"  top opcodes (of {len(data.opcodes)}):")
        width = max(len(name) for name, _ in rows)
        for name, count in rows:
            lines.append(
                f"    {name:<{width}}  {count:>10}  {100.0 * count / total:5.1f}%")
    blocks = data.block_table(top)
    if blocks:
        lines.append(
            f"  hot blocks (of {len(data.blocks)}): "
            f"entry len dispatches steps builds steps/build")
        for row in blocks:
            amortized = (row["steps"] / row["builds"]) if row["builds"] else 0.0
            lines.append(
                f"    {row['entry']:#010x} {row['length']:>3} "
                f"{row['dispatches']:>10} {row['steps']:>8} "
                f"{row['builds']:>6} {amortized:>11.1f}")
    if data.cache:
        lines.append("  cache attribution:")
        for name in CACHE_LINES:
            if name in data.cache:
                lines.append(f"    {name:<32} {data.cache[name]:>10}")
    lines.append(
        f"  stack samples: {data.sample_count} "
        f"(every {data.sample_interval} steps)"
        if data.sample_interval else "  stack samples: disabled")
    return "\n".join(lines)


# -- wall-clock correlation (opt-in harness layer) -----------------------------


class WallSection:
    """One labeled wall-clock measurement with its simulated-step count."""

    def __init__(self, label: str):
        self.label = label
        self.wall_seconds = 0.0
        self.steps = 0
        self._started: Optional[float] = None

    def __enter__(self) -> "WallSection":
        self._started = perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.wall_seconds += perf_counter() - self._started
        self._started = None


class WallClockProfiler:
    """Opt-in wall-time correlation for bench runs.

    Deliberately a *separate* layer from :class:`DeterministicProfiler`
    (the PR 6 telemetry split): wall timings are machine-dependent, so
    they are never folded into :class:`ProfileData` and never touch the
    deterministic artifacts — they only annotate benchmark output so a
    simulated-cost line can be read as steps/second on this machine.
    """

    def __init__(self):
        self.sections: List[WallSection] = []

    def section(self, label: str) -> WallSection:
        section = WallSection(label)
        self.sections.append(section)
        return section

    def to_dict(self) -> dict:
        return {
            "schema": WALL_SCHEMA,
            "sections": [
                {
                    "label": section.label,
                    "wall_seconds": round(section.wall_seconds, 6),
                    "steps": section.steps,
                    "steps_per_second": round(
                        section.steps / section.wall_seconds, 1)
                    if section.wall_seconds > 0 else None,
                }
                for section in self.sections
            ],
        }
