"""The collector: one simulated clock, one event bus, one metrics registry,
one span tracer, and the run's crash postmortems.

Emitters throughout the stack (``Network``, ``FaultPolicy``, the caches,
the daemon/supervisor, the emulators, the brute forcer) accept an optional
``observer=`` collector and stay byte-identical in behavior when it is
``None`` — observation never perturbs the run.  The clock only moves
when a driver moves it (:meth:`advance` / :meth:`advance_to`), so
timestamps are simulated seconds, not wall time, and two same-seed runs
produce identical traces, metrics, span trees, and postmortems.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any, List, Optional

from .events import EventBus, TraceEvent
from .metrics import MetricsRegistry
from .spans import Tracer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .postmortem import CrashReport
    from .timeseries import TimeSeriesStore


class Collector:
    """Bundle of clock + :class:`EventBus` + :class:`MetricsRegistry` +
    :class:`~repro.obs.spans.Tracer` (+ an optional time-series store)."""

    def __init__(self, *, event_limit: int = 100_000,
                 series: Optional["TimeSeriesStore"] = None):
        self.clock = 0.0
        self.bus = EventBus(limit=event_limit)
        self.metrics = MetricsRegistry()
        self.tracer = Tracer(self)
        #: Attached :class:`~repro.obs.timeseries.TimeSeriesStore`, if any.
        self.series = series
        #: Attached :class:`~repro.obs.profiler.DeterministicProfiler`,
        #: if any (the daemon wires it onto each booted process).
        self.profiler = None
        #: Attached :class:`~repro.obs.taint.TaintEngine`, if any (the
        #: daemon wires it onto each booted process).
        self.taint = None
        #: Crash forensics captured during the run, oldest first.
        self.postmortems: List["CrashReport"] = []

    # -- simulated time -------------------------------------------------------

    def advance(self, seconds: float) -> float:
        """Move the clock forward by ``seconds`` (which must be >= 0).

        A negative delta would move the clock backwards and silently break
        the monotonic-timestamp invariant that :meth:`advance_to` guards,
        so it is rejected loudly instead.
        """
        if seconds < 0:
            raise ValueError(
                f"collector clock cannot move backwards: advance({seconds!r})"
            )
        self.clock += seconds
        self._sample_grid()
        return self.clock

    def advance_to(self, when: float) -> float:
        """Move the clock forward to ``when`` (never backwards)."""
        self.clock = max(self.clock, when)
        self._sample_grid()
        return self.clock

    # -- time series ----------------------------------------------------------

    def attach_series(self, store: "TimeSeriesStore") -> "TimeSeriesStore":
        """Attach a time-series store; clock movement now takes samples."""
        self.series = store
        return store

    # -- profiling ------------------------------------------------------------

    def attach_profiler(self, profiler):
        """Attach a deterministic profiler; anything that boots a process
        under this collector (the daemon does) wires it onto the process
        and registers the booted image's symbols for stack sampling."""
        self.profiler = profiler
        return profiler

    # -- taint provenance -----------------------------------------------------

    def attach_taint(self, engine):
        """Attach a taint engine; anything that boots a process under this
        collector (the daemon does) shadows the process's memory with it,
        and the ``taint.*`` counters land in this collector's registry."""
        self.taint = engine
        engine.collector = self
        return engine

    def _sample_grid(self) -> None:
        if self.series is not None:
            self.series.observe_clock(self.clock, self.metrics)

    def sample(self) -> float:
        """Force one off-grid sample at the current clock (end-of-run flush)."""
        if self.series is None:
            raise ValueError(
                "no TimeSeriesStore attached (use Collector.attach_series)")
        return self.series.force_sample(self.clock, self.metrics)

    # -- emission -------------------------------------------------------------

    def emit(self, category: str, kind: str, **detail: Any) -> TraceEvent:
        """Record one event at the current simulated time.

        Every emit also bumps the ``events.<category>`` counter, so the
        metrics side always carries a coarse activity profile even when
        a caller never touches the registry directly.  Events emitted
        while a span is open are stamped with that span's id, and ring-
        buffer shedding is mirrored into the ``events.dropped`` counter
        so it is never silent.
        """
        self.metrics.inc(f"events.{category}")
        dropped_before = self.bus.dropped
        event = self.bus.emit(
            category, kind, time=self.clock, span=self.tracer.current_id, **detail
        )
        shed = self.bus.dropped - dropped_before
        if shed:
            self.metrics.inc("events.dropped", shed)
        return event

    def inc(self, name: str, amount: int = 1) -> None:
        self.metrics.inc(name, amount)

    def observe(self, name: str, value: float) -> None:
        self.metrics.observe(name, value)

    def record_postmortem(self, report: "CrashReport") -> "CrashReport":
        """File one crash report; counted so triage tooling can find it."""
        self.postmortems.append(report)
        self.metrics.inc("crash.postmortems")
        return report

    @property
    def last_postmortem(self) -> Optional["CrashReport"]:
        return self.postmortems[-1] if self.postmortems else None

    # -- export ---------------------------------------------------------------

    def to_dict(self, *, last_events: Optional[int] = None) -> dict:
        """Full export; ``last_events=0`` means *no* events, not all of them,
        and a negative count is rejected (same guard as :meth:`advance`)."""
        if last_events is not None and last_events < 0:
            raise ValueError(
                f"last_events cannot be negative: {last_events!r}")
        exported = {
            "clock": round(self.clock, 6),
            "events": self.bus.to_dicts(last_events),
            "events_dropped": self.bus.dropped,
            "metrics": self.metrics.to_dict(),
            "spans": self.tracer.to_dicts(),
            "postmortems": [report.to_dict() for report in self.postmortems],
        }
        if self.series is not None:
            exported["series"] = self.series.to_dict()
        if self.profiler is not None:
            exported["profile"] = self.profiler.to_dict()
        if self.taint is not None:
            exported["taint"] = self.taint.to_dict()
        return exported

    def to_json(self, *, last_events: Optional[int] = None, indent: int = 2) -> str:
        return json.dumps(self.to_dict(last_events=last_events), indent=indent)

    def summary(self) -> str:
        kinds = self.bus.kinds()
        top = ", ".join(f"{kind}={count}" for kind, count
                        in sorted(kinds.items(), key=lambda kv: (-kv[1], kv[0]))[:6])
        text = (f"collector: clock={self.clock:.1f}s, {len(self.bus)} events"
                f" ({top or 'none'}), {len(self.tracer.spans)} spans")
        if self.bus.dropped:
            text += f", {self.bus.dropped} events dropped"
        if self.postmortems:
            text += f", {len(self.postmortems)} postmortems"
        return text
