"""The collector: one simulated clock, one event bus, one metrics registry.

Emitters throughout the stack (``Network``, ``FaultPolicy``, the caches,
the daemon/supervisor, the brute forcer) accept an optional
``observer=`` collector and stay byte-identical in behavior when it is
``None`` — observation never perturbs the run.  The clock only moves
when a driver moves it (:meth:`advance` / :meth:`advance_to`), so
timestamps are simulated seconds, not wall time, and two same-seed runs
produce identical traces.
"""

from __future__ import annotations

import json
from typing import Any, Optional

from .events import EventBus, TraceEvent
from .metrics import MetricsRegistry


class Collector:
    """Bundle of clock + :class:`EventBus` + :class:`MetricsRegistry`."""

    def __init__(self, *, event_limit: int = 100_000):
        self.clock = 0.0
        self.bus = EventBus(limit=event_limit)
        self.metrics = MetricsRegistry()

    # -- simulated time -------------------------------------------------------

    def advance(self, seconds: float) -> float:
        self.clock += seconds
        return self.clock

    def advance_to(self, when: float) -> float:
        """Move the clock forward to ``when`` (never backwards)."""
        self.clock = max(self.clock, when)
        return self.clock

    # -- emission -------------------------------------------------------------

    def emit(self, category: str, kind: str, **detail: Any) -> TraceEvent:
        """Record one event at the current simulated time.

        Every emit also bumps the ``events.<category>`` counter, so the
        metrics side always carries a coarse activity profile even when
        a caller never touches the registry directly.
        """
        self.metrics.inc(f"events.{category}")
        return self.bus.emit(category, kind, time=self.clock, **detail)

    def inc(self, name: str, amount: int = 1) -> None:
        self.metrics.inc(name, amount)

    def observe(self, name: str, value: float) -> None:
        self.metrics.observe(name, value)

    # -- export ---------------------------------------------------------------

    def to_dict(self, *, last_events: Optional[int] = None) -> dict:
        return {
            "clock": round(self.clock, 6),
            "events": self.bus.to_dicts(last_events),
            "events_dropped": self.bus.dropped,
            "metrics": self.metrics.to_dict(),
        }

    def to_json(self, *, last_events: Optional[int] = None, indent: int = 2) -> str:
        return json.dumps(self.to_dict(last_events=last_events), indent=indent)

    def summary(self) -> str:
        kinds = self.bus.kinds()
        top = ", ".join(f"{kind}={count}" for kind, count
                        in sorted(kinds.items(), key=lambda kv: (-kv[1], kv[0]))[:6])
        return (f"collector: clock={self.clock:.1f}s, {len(self.bus)} events"
                f" ({top or 'none'})")
