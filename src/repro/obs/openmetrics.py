"""OpenMetrics / Prometheus text exposition of the telemetry layer.

:func:`export_openmetrics` renders a collector's counters, histograms
(with cumulative ``le`` buckets), and attached time-series snapshots in
the OpenMetrics text format, so any standard scraper, ``promtool``, or a
human with ``grep`` can consume a campaign's metrics without bespoke
tooling.  :func:`parse_openmetrics` is the *strict* inverse — it rejects
malformed documents loudly (missing ``# EOF``, samples before their
``# TYPE``, non-cumulative buckets, bad floats) and returns the family
structure :func:`render_openmetrics` serializes back canonically, so

    ``render(parse(text)) == text``

round-trips bit-for-bit; the tests pin it.

Mapping from registry names: dotted metric names are sanitized to the
``[a-zA-Z0-9_:]`` charset (``cache.stale`` -> ``cache_stale``), with the
original name preserved in the ``# HELP`` line.  Counters expose a
``_total`` sample; time series become a companion ``<name>_series``
gauge family carrying one timestamped sample per recorded point — the
OpenMetrics "multiple MetricPoints per family" form.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .collector import Collector

VALID_TYPES = ("counter", "gauge", "histogram")

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^{}]*)\})?"
    r" (?P<value>\S+)"
    r"(?: (?P<timestamp>\S+))?$"
)
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


class OpenMetricsError(ValueError):
    """A document that violates the exposition format."""


def metric_name(name: str) -> str:
    """Sanitize a dotted registry name into the OpenMetrics charset."""
    cleaned = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    if not cleaned or not re.match(r"[a-zA-Z_:]", cleaned[0]):
        cleaned = "_" + cleaned
    return cleaned


def format_value(value: float) -> str:
    """Canonical float rendering (shortest round-trip repr)."""
    return repr(float(value))


@dataclass(frozen=True)
class MetricSample:
    """One exposition line: name, ordered labels, value, optional timestamp."""

    name: str
    labels: Tuple[Tuple[str, str], ...]
    value: float
    timestamp: Optional[float] = None

    def render(self) -> str:
        label_text = ""
        if self.labels:
            inner = ",".join(f'{key}="{_escape(value)}"'
                             for key, value in self.labels)
            label_text = "{" + inner + "}"
        line = f"{self.name}{label_text} {format_value(self.value)}"
        if self.timestamp is not None:
            line += f" {format_value(self.timestamp)}"
        return line


@dataclass
class MetricFamily:
    """One ``# TYPE`` block: metadata plus its samples in order."""

    name: str
    type: str
    help: str = ""
    samples: List[MetricSample] = field(default_factory=list)


def _escape(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _unescape(text: str) -> str:
    return (text.replace("\\n", "\n").replace('\\"', '"')
            .replace("\\\\", "\\"))


# -- building families from the telemetry layer --------------------------------


def build_families(collector: "Collector") -> List[MetricFamily]:
    """Families for every counter, histogram, and attached series."""
    registry = collector.metrics
    families: List[MetricFamily] = []
    for name, value in registry.counters().items():
        family = MetricFamily(metric_name(name), "counter",
                              help=f"source metric {name}")
        family.samples.append(
            MetricSample(family.name + "_total", (), float(value)))
        families.append(family)
    for name in sorted(registry._histograms):
        histogram = registry._histograms[name]
        family = MetricFamily(metric_name(name), "histogram",
                              help=f"source metric {name}")
        cumulative = 0
        for bound, count in zip(histogram.bounds, histogram.bucket_counts):
            cumulative += count
            family.samples.append(MetricSample(
                family.name + "_bucket", (("le", format_value(bound)),),
                float(cumulative)))
        family.samples.append(MetricSample(
            family.name + "_bucket", (("le", "+Inf"),), float(histogram.count)))
        family.samples.append(
            MetricSample(family.name + "_sum", (), histogram.total))
        family.samples.append(
            MetricSample(family.name + "_count", (), float(histogram.count)))
        families.append(family)
    store = collector.series
    if store is not None:
        for name in store.names():
            series = store.series[name]
            if not series.times:
                continue
            family = MetricFamily(metric_name(name) + "_series", "gauge",
                                  help=f"sampled series for {name} "
                                       f"(interval {store.interval:g}s)")
            for time, value in zip(series.times, series.values):
                point = (float(value) if series.kind == "counter"
                         else float(value["count"]))
                family.samples.append(
                    MetricSample(family.name, (), point, timestamp=time))
            families.append(family)
    return families


# -- rendering ------------------------------------------------------------------


def render_openmetrics(families: List[MetricFamily]) -> str:
    """Canonical text document (ends with ``# EOF`` and a newline)."""
    lines: List[str] = []
    for family in families:
        if family.help:
            lines.append(f"# HELP {family.name} {_escape(family.help)}")
        lines.append(f"# TYPE {family.name} {family.type}")
        for sample in family.samples:
            lines.append(sample.render())
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def export_openmetrics(collector: "Collector") -> str:
    """One-call exposition of a collector's whole telemetry state."""
    return render_openmetrics(build_families(collector))


# -- strict parsing --------------------------------------------------------------


def _family_for(name: str, families: Dict[str, MetricFamily]) -> MetricFamily:
    """Resolve a sample name to its declared family (suffix-aware)."""
    if name in families:
        return families[name]
    for suffix in ("_total", "_bucket", "_sum", "_count"):
        if name.endswith(suffix) and name[: -len(suffix)] in families:
            return families[name[: -len(suffix)]]
    raise OpenMetricsError(f"sample {name!r} has no preceding # TYPE")


def _check_suffix(family: MetricFamily, sample_name: str) -> None:
    base = family.name
    if family.type == "counter":
        allowed = (base + "_total",)
    elif family.type == "gauge":
        allowed = (base,)
    else:
        allowed = (base + "_bucket", base + "_sum", base + "_count")
    if sample_name not in allowed:
        raise OpenMetricsError(
            f"sample {sample_name!r} is not legal for {family.type} "
            f"family {base!r} (allowed: {', '.join(allowed)})")


def _check_histogram(family: MetricFamily) -> None:
    buckets = [s for s in family.samples if s.name == family.name + "_bucket"]
    counts = [s for s in family.samples if s.name == family.name + "_count"]
    if not buckets:
        raise OpenMetricsError(f"histogram {family.name!r} has no buckets")
    previous = None
    for sample in buckets:
        labels = dict(sample.labels)
        if "le" not in labels:
            raise OpenMetricsError(
                f"histogram {family.name!r} bucket missing 'le' label")
        if previous is not None and sample.value < previous:
            raise OpenMetricsError(
                f"histogram {family.name!r} buckets are not cumulative")
        previous = sample.value
    if dict(buckets[-1].labels).get("le") != "+Inf":
        raise OpenMetricsError(
            f"histogram {family.name!r} must end with the +Inf bucket")
    if counts and counts[0].value != buckets[-1].value:
        raise OpenMetricsError(
            f"histogram {family.name!r}: _count {counts[0].value} != "
            f"+Inf bucket {buckets[-1].value}")


def parse_openmetrics(text: str) -> List[MetricFamily]:
    """Strict parse; raises :class:`OpenMetricsError` with line numbers."""
    lines = text.split("\n")
    if not lines or lines[-1] != "":
        raise OpenMetricsError("document must end with a newline")
    lines = lines[:-1]
    if not lines or lines[-1] != "# EOF":
        raise OpenMetricsError("document must terminate with '# EOF'")
    families: Dict[str, MetricFamily] = {}
    ordered: List[MetricFamily] = []
    current: Optional[MetricFamily] = None
    for number, line in enumerate(lines[:-1], start=1):
        if not line:
            raise OpenMetricsError(f"line {number}: blank lines are not allowed")
        if line.startswith("# TYPE ") or line.startswith("# HELP "):
            keyword = line[2:6]
            parts = line[7:].split(" ", 1)
            name = parts[0]
            rest = parts[1] if len(parts) > 1 else ""
            if not _NAME_RE.match(name):
                raise OpenMetricsError(
                    f"line {number}: invalid metric name {name!r}")
            if keyword == "TYPE":
                if rest not in VALID_TYPES:
                    raise OpenMetricsError(
                        f"line {number}: unknown metric type {rest!r}")
                if name in families and families[name].type:
                    raise OpenMetricsError(
                        f"line {number}: duplicate # TYPE for {name!r}")
                family = families.get(name)
                if family is None:
                    family = MetricFamily(name, rest)
                    families[name] = family
                    ordered.append(family)
                else:
                    family.type = rest
                current = family
            else:
                family = families.get(name)
                if family is not None and family.help:
                    raise OpenMetricsError(
                        f"line {number}: duplicate # HELP for {name!r}")
                if family is None:
                    family = MetricFamily(name, "", help=_unescape(rest))
                    families[name] = family
                    ordered.append(family)
                else:
                    family.help = _unescape(rest)
                current = family
            continue
        if line.startswith("#"):
            raise OpenMetricsError(
                f"line {number}: unknown comment directive {line!r}")
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise OpenMetricsError(f"line {number}: malformed sample {line!r}")
        name = match.group("name")
        try:
            family = _family_for(name, families)
        except OpenMetricsError as why:
            raise OpenMetricsError(f"line {number}: {why}") from None
        if not family.type:
            raise OpenMetricsError(
                f"line {number}: sample {name!r} precedes its # TYPE")
        if current is not None and family is not current and family.samples:
            raise OpenMetricsError(
                f"line {number}: family {family.name!r} is interleaved")
        _check_suffix(family, name)
        labels: Tuple[Tuple[str, str], ...] = ()
        label_text = match.group("labels")
        if label_text:
            pairs = _LABEL_RE.findall(label_text)
            rebuilt = ",".join(f'{key}="{value}"' for key, value in pairs)
            if rebuilt != label_text:
                raise OpenMetricsError(
                    f"line {number}: malformed labels {label_text!r}")
            labels = tuple((key, _unescape(value)) for key, value in pairs)
        try:
            value = float(match.group("value"))
        except ValueError:
            raise OpenMetricsError(
                f"line {number}: bad sample value "
                f"{match.group('value')!r}") from None
        timestamp_text = match.group("timestamp")
        timestamp = None
        if timestamp_text is not None:
            try:
                timestamp = float(timestamp_text)
            except ValueError:
                raise OpenMetricsError(
                    f"line {number}: bad timestamp {timestamp_text!r}") from None
        family.samples.append(MetricSample(name, labels, value, timestamp))
        current = family
    for family in ordered:
        if not family.type:
            raise OpenMetricsError(
                f"family {family.name!r} has # HELP but no # TYPE")
        if family.type == "histogram" and family.samples:
            _check_histogram(family)
    return ordered
