"""Pcap-style text export of a network's traffic log.

Binary libpcap needs tooling the simulated world doesn't have; what the
workflow actually needs is a capture artifact that (a) a human can read
in a terminal, (b) survives copy/paste into a bug report, and (c)
round-trips losslessly so a :class:`~repro.net.sniffer.PacketSniffer`
can re-analyze a capture taken in another process.  One record per
logged datagram::

    #reprocap v1 network=pineapple-lan packets=2
    0 10.9.9.100:40000 > 10.9.9.1:53 len=31 8f2a0100...
    1 10.9.9.1:53 > 10.9.9.100:40000 len=47 8f2a8180...

The payload is lowercase hex — exactly the post-fault bytes the victim
handler received (see ``Network.deliver``), so replaying a capture shows
the sniffer the same wire the original run saw.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

from ..net.network import Network
from ..net.packets import UdpDatagram

MAGIC = "#reprocap v1"


class PcapFormatError(ValueError):
    """The text capture is not a well-formed reprocap v1 document."""


def export_pcap_text(network: Network, *, taint=None) -> str:
    """Render ``network.traffic`` as a reprocap v1 text document.

    ``taint`` (a :class:`~repro.obs.taint.TaintEngine`) annotates every
    record whose payload bytes reached a tainted program counter with a
    ``#``-comment line; the parser skips comments, so annotated captures
    still round-trip losslessly.
    """
    return export_datagrams(network.traffic, name=network.name, taint=taint)


def export_datagrams(datagrams: Iterable[UdpDatagram], *, name: str = "capture",
                     taint=None) -> str:
    records = list(datagrams)
    lines = [f"{MAGIC} network={name} packets={len(records)}"]
    for index, datagram in enumerate(records):
        lines.append(
            f"{index} {datagram.src_ip}:{datagram.src_port} > "
            f"{datagram.dst_ip}:{datagram.dst_port} "
            f"len={len(datagram.payload)} {datagram.payload.hex() or '-'}"
        )
        if taint is not None and taint.datagram_reached_pc(datagram.payload):
            from .taint import payload_digest

            lines.append(f"# taint: packet {index} bytes reached a tainted "
                         f"PC (payload digest {payload_digest(datagram.payload)})")
    return "\n".join(lines) + "\n"


def _parse_endpoint(text: str) -> Tuple[str, int]:
    host, _, port = text.rpartition(":")
    if not host or not port.isdigit():
        raise PcapFormatError(f"bad endpoint {text!r}")
    return host, int(port)


def parse_pcap_text(text: str) -> Tuple[str, List[UdpDatagram]]:
    """Parse a reprocap v1 document back into ``(network_name, datagrams)``."""
    lines = [line for line in text.splitlines() if line.strip()]
    if not lines or not lines[0].startswith(MAGIC):
        raise PcapFormatError("missing reprocap v1 header")
    header_fields = dict(
        field.split("=", 1) for field in lines[0][len(MAGIC):].split() if "=" in field
    )
    name = header_fields.get("network", "capture")
    datagrams: List[UdpDatagram] = []
    for line in lines[1:]:
        if line.lstrip().startswith("#"):
            # Annotation comments (taint markers, operator notes) ride in
            # the document but are not records.
            continue
        parts = line.split()
        if len(parts) != 6 or parts[2] != ">":
            raise PcapFormatError(f"bad record: {line!r}")
        _index, src, _arrow, dst, length_field, payload_hex = parts
        src_ip, src_port = _parse_endpoint(src)
        dst_ip, dst_port = _parse_endpoint(dst)
        payload = b"" if payload_hex == "-" else bytes.fromhex(payload_hex)
        if not length_field.startswith("len=") or int(length_field[4:]) != len(payload):
            raise PcapFormatError(f"length mismatch in record: {line!r}")
        datagrams.append(UdpDatagram(src_ip=src_ip, src_port=src_port,
                                     dst_ip=dst_ip, dst_port=dst_port,
                                     payload=payload))
    declared = header_fields.get("packets")
    if declared is not None and declared.isdigit() and int(declared) != len(datagrams):
        raise PcapFormatError(
            f"header declares {declared} packets, found {len(datagrams)}"
        )
    return name, datagrams


def replay_network(text: str) -> Network:
    """Rebuild a hostless :class:`Network` whose traffic log is the capture.

    Attach a :class:`~repro.net.sniffer.PacketSniffer` *before* traffic
    exists by constructing it against this network and rewinding its
    cursor — or simpler, attach and then extend; this helper pre-loads
    the traffic so ``sniffer.attach(net); sniffer.poll()`` sees nothing
    (cursor starts at the end).  Use :func:`sniff_capture` for the
    one-call analyze path.
    """
    name, datagrams = parse_pcap_text(text)
    network = Network(name)
    network.traffic.extend(datagrams)
    return network


def sniff_capture(text: str):
    """Round-trip a capture through the sniffer: returns the analyzed packets.

    Imports lazily to keep ``repro.obs`` importable without the whole
    ``repro.net`` surface.
    """
    from ..net.sniffer import PacketSniffer

    name, datagrams = parse_pcap_text(text)
    network = Network(name)
    sniffer = PacketSniffer()
    sniffer.attach(network)
    network.traffic.extend(datagrams)
    sniffer.poll()
    return sniffer.captured
