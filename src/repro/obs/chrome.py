"""Chrome trace-event export: load a run in Perfetto / chrome://tracing.

The JSON Object Format of the Trace Event spec: a top-level object with a
``traceEvents`` array.  Completed spans become complete-duration events
(``ph: "X"``) and bus events become instant events (``ph: "i"``), both
timestamped in **simulated-clock microseconds** — the timeline you see in
Perfetto is the run's virtual time, not wall time, so two same-seed runs
export byte-identical traces.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

#: Chrome trace "pid" for the whole simulated world.
TRACE_PID = 1

#: Required keys for each phase type we emit (the subset of the Trace
#: Event schema that Perfetto actually enforces).
_REQUIRED_KEYS = {
    "X": ("name", "cat", "ph", "ts", "dur", "pid", "tid"),
    "i": ("name", "cat", "ph", "ts", "pid", "tid", "s"),
    "C": ("name", "cat", "ph", "ts", "pid", "args"),
}


def _micros(seconds: float) -> float:
    return round(seconds * 1e6, 3)


def chrome_counter_events(collector) -> List[Dict[str, Any]]:
    """Perfetto counter tracks (``ph: "C"``) from the attached series store.

    Every sampled counter series becomes one counter track on the
    simulated timeline — cache hit/miss rates, restarts, query counts —
    drawn by Perfetto as per-name area charts under the span rows.
    Collectors without a :class:`~repro.obs.timeseries.TimeSeriesStore`
    contribute no counter events (the export stays valid).
    """
    events: List[Dict[str, Any]] = []
    store = getattr(collector, "series", None)
    if store is None:
        return events
    for name in store.names():
        series = store.series[name]
        if series.kind != "counter":
            continue
        for time, value in zip(series.times, series.values):
            events.append(
                {
                    "name": name,
                    "cat": name.split(".", 1)[0].split("_", 1)[0],
                    "ph": "C",
                    "ts": _micros(time),
                    "pid": TRACE_PID,
                    "args": {"value": value},
                }
            )
    return events


def chrome_trace_events(collector) -> List[Dict[str, Any]]:
    """Flatten one collector into a Trace Event array (spans + instants +
    counter tracks)."""
    events: List[Dict[str, Any]] = []
    for span in collector.tracer.spans:
        if span.end is None:
            continue  # unclosed spans have no extent to draw
        args = {key: value for key, value in span.attrs.items()}
        args["span_id"] = span.span_id
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        events.append(
            {
                "name": span.name,
                "cat": span.name.split(".", 1)[0],
                "ph": "X",
                "ts": _micros(span.start),
                "dur": _micros(span.end - span.start),
                "pid": TRACE_PID,
                "tid": TRACE_PID,
                "args": args,
            }
        )
    for event in collector.bus.events:
        args: Dict[str, Any] = dict(event.detail)
        args["seq"] = event.seq
        if event.span is not None:
            args["span_id"] = event.span
        events.append(
            {
                "name": event.kind,
                "cat": event.category,
                "ph": "i",
                "ts": _micros(event.time),
                "pid": TRACE_PID,
                "tid": TRACE_PID,
                "s": "t",  # thread-scoped instant
                "args": args,
            }
        )
    events.extend(chrome_counter_events(collector))
    return events


def export_chrome_trace(collector) -> Dict[str, Any]:
    """The loadable document: ``json.dump`` this and open it in Perfetto."""
    return {
        "traceEvents": chrome_trace_events(collector),
        "displayTimeUnit": "ms",
        "otherData": {
            "clock": "simulated-seconds",
            "generator": "repro trace-export",
            "events_dropped": collector.bus.dropped,
        },
    }


def validate_chrome_trace(payload: Any) -> int:
    """Check a document against the Trace Event schema subset we emit.

    Returns the number of events; raises :class:`ValueError` naming the
    first offending event otherwise.  Used by the CI smoke and tests so a
    malformed export fails loudly instead of silently refusing to load in
    Perfetto.
    """
    if not isinstance(payload, dict) or "traceEvents" not in payload:
        raise ValueError("chrome trace: top level must be an object with 'traceEvents'")
    trace_events = payload["traceEvents"]
    if not isinstance(trace_events, list):
        raise ValueError("chrome trace: 'traceEvents' must be an array")
    for index, event in enumerate(trace_events):
        if not isinstance(event, dict):
            raise ValueError(f"chrome trace: event #{index} is not an object")
        phase = event.get("ph")
        required = _REQUIRED_KEYS.get(phase)
        if required is None:
            raise ValueError(f"chrome trace: event #{index} has unknown ph {phase!r}")
        missing = [key for key in required if key not in event]
        if missing:
            raise ValueError(
                f"chrome trace: event #{index} ({event.get('name')!r}) "
                f"missing keys {missing}"
            )
        for key in ("ts", "dur"):
            if key in event and not isinstance(event[key], (int, float)):
                raise ValueError(
                    f"chrome trace: event #{index} {key} must be a number"
                )
    json.dumps(payload)  # must be serializable end to end
    return len(trace_events)
