"""Causal span tracing over the simulated clock.

A :class:`Span` is one timed, nestable unit of pipeline work — a datagram
crossing the wire, the daemon parsing a reply, one emulator run, one
exploit attempt — and a :class:`Tracer` (hung off the
:class:`~repro.obs.collector.Collector`) maintains the *current-span
stack* that turns the synchronous call tree into a causal tree: a span
started while another is open becomes its child, so one exploit attempt
is one connected tree from wire to verdict with no manual context
threading.

Where the call tree is broken by data (a datagram handed to another
layer), the span id is stamped into the carrier — ``Network.deliver``
writes it into :attr:`UdpDatagram.span_id` — so crash forensics can walk
from a dead process back to the exact bytes that killed it.

Determinism: span ids are a per-tracer monotonic counter and timestamps
come from the collector's simulated clock, so two same-seed runs produce
byte-identical span trees.  Worker processes ship their span lists back
to the parent, which :meth:`Tracer.adopt`\\ s them in task order with a
deterministic id rebase — parallel sweeps reproduce the sequential tree
structure exactly.

Span name taxonomy (name = ``layer.verb``):

===========  =====================================================
layer        spans
===========  =====================================================
``net``      ``net.deliver`` — one datagram's full traversal
``dns``      ``dns.forward`` — shared-forwarder query handling
``daemon``   ``daemon.handle_query`` ``daemon.parse``
``cpu``      ``cpu.run`` — one emulation run (x86 and ARM)
``exploit``  ``exploit.attempt`` ``exploit.deliver``
===========  =====================================================
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

#: Largest payload snapshot kept in a span's attrs (bytes before hexing).
#: Big enough for every DNS exploit blob in the repo; capped so long chaos
#: runs cannot hoard memory through packet snapshots.
PAYLOAD_SNAPSHOT_LIMIT = 4096


@dataclass
class Span:
    """One nestable, simulated-clock-timed unit of pipeline work."""

    span_id: int
    parent_id: Optional[int]
    name: str
    start: float
    end: Optional[float] = None
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> Optional[float]:
        return None if self.end is None else self.end - self.start

    def to_dict(self) -> dict:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": round(self.start, 6),
            "end": None if self.end is None else round(self.end, 6),
            "duration": None if self.duration is None else round(self.duration, 6),
            "attrs": dict(self.attrs),
        }

    def describe(self) -> str:
        timing = f"t={self.start:.1f}"
        if self.duration is not None:
            timing += f" +{self.duration:.3f}s"
        bits = " ".join(
            f"{key}={value}" for key, value in self.attrs.items() if key != "payload"
        )
        return f"{self.name} #{self.span_id} [{timing}] {bits}".rstrip()


def snapshot_payload(payload: bytes) -> str:
    """Hex snapshot of wire bytes for span attrs / postmortems (capped)."""
    return payload[:PAYLOAD_SNAPSHOT_LIMIT].hex()


class Tracer:
    """Span factory + current-span stack bound to one collector's clock.

    The tracer never generates its own time or ids from the environment:
    ids are a monotonic counter, timestamps are the collector's simulated
    clock, and every completed span feeds the ``span.<name>.duration``
    histogram — observation stays exactly as deterministic as the run.
    """

    def __init__(self, collector):
        self._collector = collector
        self.spans: List[Span] = []
        self._by_id: Dict[int, Span] = {}
        self._stack: List[Span] = []
        self._next_id = 0

    # -- the current-span stack ------------------------------------------------

    @property
    def current(self) -> Optional[Span]:
        return self._stack[-1] if self._stack else None

    @property
    def current_id(self) -> Optional[int]:
        return self._stack[-1].span_id if self._stack else None

    def start(self, name: str, **attrs: Any) -> Span:
        """Open a span as a child of the current span (or a new root)."""
        span = Span(
            span_id=self._next_id,
            parent_id=self.current_id,
            name=name,
            start=self._collector.clock,
            attrs=attrs,
        )
        self._next_id += 1
        self.spans.append(span)
        self._by_id[span.span_id] = span
        self._stack.append(span)
        return span

    def end(self, span: Span, **attrs: Any) -> Span:
        """Close a span at the current clock; feeds its duration histogram."""
        if attrs:
            span.attrs.update(attrs)
        span.end = self._collector.clock
        for index in range(len(self._stack) - 1, -1, -1):
            if self._stack[index] is span:
                del self._stack[index]
                break
        self._collector.metrics.observe(
            f"span.{span.name}.duration", span.end - span.start
        )
        return span

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[Span]:
        """``with tracer.span("daemon.handle_query"): ...`` — ends on exit."""
        opened = self.start(name, **attrs)
        try:
            yield opened
        finally:
            self.end(opened)

    # -- queries ---------------------------------------------------------------

    def get(self, span_id: Optional[int]) -> Optional[Span]:
        return None if span_id is None else self._by_id.get(span_id)

    def children(self, span_id: Optional[int]) -> List[Span]:
        return [span for span in self.spans if span.parent_id == span_id]

    def roots(self) -> List[Span]:
        return self.children(None)

    def path(self, span_id: Optional[int] = None) -> List[str]:
        """Span names from the root down to ``span_id`` (default: current)."""
        span = self.get(span_id if span_id is not None else self.current_id)
        names: List[str] = []
        while span is not None:
            names.append(span.name)
            span = self.get(span.parent_id)
        return list(reversed(names))

    def nearest_payload_span(self) -> Optional[Span]:
        """Innermost open span carrying a wire-payload snapshot.

        Crash forensics use this to resolve "which datagram did this": the
        delivery/parse spans stamp the post-fault bytes they carried into
        their attrs, and the innermost one enclosing the crash is the
        offending packet.
        """
        for span in reversed(self._stack):
            if "payload" in span.attrs:
                return span
        return None

    # -- merging (parallel sweep workers) --------------------------------------

    def adopt(self, spans: Sequence[Span]) -> Dict[int, int]:
        """Fold a worker tracer's span list in, rebasing ids deterministically.

        Workers number spans from 0; adopting in task order renumbers them
        with this tracer's counter, so a parallel sweep reproduces the
        sequential run's ids and parent links exactly.  Parents precede
        children in start order, so a single forward pass suffices.
        """
        id_map: Dict[int, int] = {}
        for span in spans:
            adopted = Span(
                span_id=self._next_id,
                parent_id=(
                    id_map[span.parent_id] if span.parent_id is not None else None
                ),
                name=span.name,
                start=span.start,
                end=span.end,
                attrs=dict(span.attrs),
            )
            id_map[span.span_id] = adopted.span_id
            self._next_id += 1
            self.spans.append(adopted)
            self._by_id[adopted.span_id] = adopted
        return id_map

    # -- export ----------------------------------------------------------------

    def to_dicts(self) -> List[dict]:
        return [span.to_dict() for span in self.spans]

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dicts(), indent=indent)

    def signature(self) -> Tuple:
        """Structural fingerprint: (name, duration, children) per root.

        Deliberately excludes span ids and absolute timestamps, so trees
        produced under different clock offsets (parallel workers vs one
        shared sequential clock) compare by shape and per-span cost.
        """

        def node(span: Span) -> Tuple:
            duration = span.duration
            return (
                span.name,
                None if duration is None else round(duration, 6),
                tuple(node(child) for child in self.children(span.span_id)),
            )

        return tuple(node(root) for root in self.roots())

    def render_tree(self) -> str:
        """ASCII span forest, children indented under their parents."""
        lines: List[str] = []

        def walk(span: Span, prefix: str, is_last: bool) -> None:
            connector = "└─ " if is_last else "├─ "
            lines.append(prefix + connector + span.describe())
            kids = self.children(span.span_id)
            extension = "   " if is_last else "│  "
            for index, child in enumerate(kids):
                walk(child, prefix + extension, index == len(kids) - 1)

        roots = self.roots()
        for index, root in enumerate(roots):
            walk(root, "", index == len(roots) - 1)
        return "\n".join(lines) if lines else "(no spans)"
