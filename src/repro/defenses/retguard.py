"""Lightweight return-address protection — the paper's §VII future work.

"We plan on developing a light-weight stack memory protection mechanism
for IoT devices that addresses the main challenges in these devices, such
as resource constraints."

This is one concrete design meeting that constraint: the function prologue
stores the saved return address XOR-encrypted with a per-boot 32-bit secret
(cf. StackGhost / RAD), and the epilogue decrypts it before the return.
Cost is one XOR per call/return — no shadow memory, no instrumentation of
reads, no added RAM — which is the "resource constrained" trade-off versus
full CFI.

Security argument: a remote overflow writes *plaintext* addresses; the
epilogue decrypts them with the secret key, so the hijacked return lands at
``chosen ^ key`` — an unpredictable, almost-certainly-unmapped address —
and the daemon crashes (DoS) instead of executing the chain (RCE).  A
canary-style bypass (writing around the slot) does not exist because the
protected word *is* the return address.
"""

from __future__ import annotations

import random

MASK32 = 0xFFFFFFFF


class ReturnAddressGuard:
    """Per-boot XOR key applied to saved return addresses."""

    def __init__(self, rng: random.Random):
        # Force a non-trivial key: at least one high and one low byte set.
        self.key = (rng.randrange(1, 1 << 16) << 16 | rng.randrange(1, 1 << 16)) & MASK32

    def protect(self, return_address: int) -> int:
        """Value the prologue stores in the return slot."""
        return (return_address ^ self.key) & MASK32

    def restore(self, stored_value: int) -> int:
        """Value the epilogue loads into the program counter."""
        return (stored_value ^ self.key) & MASK32

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "ReturnAddressGuard(key=<per-boot secret>)"
