"""Stack-smashing protector model.

The paper compiles Connman *without* stack protectors (as the upstream
default CFLAGS did); this module exists to show what the canary would have
caught.  Security comes from value secrecy: the canary is drawn per process
start, so a remote attacker cannot place the right value while overflowing
across the slot.
"""

from __future__ import annotations

import random

from ..cpu.events import CanaryClobbered
from ..cpu.process import Process


class StackCanary:
    """One per-boot canary value plus its frame check."""

    def __init__(self, rng: random.Random):
        # Classic glibc terminator+random canary: low byte zero.
        self.value = (rng.randrange(1 << 24) << 8) & 0xFFFFFFFF

    def arm_frame(self, process: Process, slot_address: int) -> None:
        process.memory.write_u32(slot_address, self.value)

    def check_frame(self, process: Process, slot_address: int, frame_name: str) -> None:
        found = process.memory.read_u32(slot_address)
        if found != self.value:
            raise CanaryClobbered(frame_name, self.value, found)
