"""OS and compiler defense models: W^X/ASLR profiles, canary, CFI, diversity."""

from .canary import StackCanary
from .cfi import ShadowStackCfi
from .retguard import ReturnAddressGuard
from .diversity import DiversityReport, compare_builds, diversified_population, gadget_addresses
from .profile import FULL, NONE, PAPER_LEVELS, WX, WX_ASLR, ProtectionProfile

__all__ = [
    "compare_builds",
    "diversified_population",
    "DiversityReport",
    "FULL",
    "gadget_addresses",
    "NONE",
    "PAPER_LEVELS",
    "ProtectionProfile",
    "ReturnAddressGuard",
    "ShadowStackCfi",
    "StackCanary",
    "WX",
    "WX_ASLR",
]
