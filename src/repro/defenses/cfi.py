"""Control-flow integrity (§IV, CFI CaRE-style) as an emulator policy.

Two complementary checks, both hardware-assisted in the mitigation the
paper proposes to adapt:

* a **shadow stack**: every call records its return address on a protected
  side stack; every return must match the top entry — this stops all three
  exploit classes at their very first hijacked return;
* **indirect-branch target checking**: indirect calls (``blx rN``) may only
  land on known function entries.
"""

from __future__ import annotations

from typing import List, Set

from ..cpu.events import ControlFlowViolation
from ..cpu.process import Process


class ShadowStackCfi:
    """Shadow stack + valid-entry policy installed as ``process.cfi``."""

    def __init__(self, valid_entries: Set[int]):
        self.valid_entries = set(valid_entries)
        self._shadow: List[int] = []
        self.violations = 0

    @classmethod
    def for_loaded(cls, loaded) -> "ShadowStackCfi":
        """Build the valid-target set from a loaded process's symbol tables."""
        entries: Set[int] = set()
        for image in (loaded.binary, loaded.libc):
            for _name, symbol in image.symbols.items():
                if symbol.kind == "func":
                    entries.add(symbol.address)
        entries.update(loaded.binary.plt.values())
        entries.update(loaded.process.native.keys())
        return cls(entries)

    # -- hooks called by the emulators and the daemon runtime ----------------

    def note_call(self, process: Process, return_address: int) -> None:
        self._shadow.append(return_address & 0xFFFFFFFF)

    def check_return(self, process: Process, at: int, target: int) -> None:
        target &= 0xFFFFFFFF
        if not self._shadow or self._shadow[-1] != target:
            self.violations += 1
            raise ControlFlowViolation(at, target, "return",
                                       f"return to {target:#010x} not on shadow stack")
        self._shadow.pop()

    def check_indirect(self, process: Process, at: int, target: int) -> None:
        if (target & 0xFFFFFFFF) not in self.valid_entries:
            self.violations += 1
            raise ControlFlowViolation(at, target, "indirect-call")

    @property
    def depth(self) -> int:
        return len(self._shadow)
