"""Compile-time software diversity (§IV) — analysis helpers.

The mechanism itself lives in :func:`repro.binfmt.build_connman`: the build
seed shuffles function link order, PLT slot order and inter-function padding,
so every "compilation" yields a semantically equivalent binary with
different gadget and PLT addresses.  This module quantifies the effect —
what fraction of one build's exploit-relevant addresses survive in another —
which is exactly the probabilistic-protection argument of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Set

from ..binfmt import Binary, build_connman


def gadget_addresses(binary: Binary) -> Set[int]:
    """Addresses of return-ish gadget heads in an image (cheap scan)."""
    from ..exploit.gadgets import GadgetFinder

    finder = GadgetFinder(binary)
    return {gadget.address for gadget in finder.all_gadgets()}


@dataclass
class DiversityReport:
    """Address survival between a reference build and one diversified build."""

    seed: int
    surviving_gadgets: int
    reference_gadgets: int
    plt_moved: int
    plt_total: int

    @property
    def gadget_survival_rate(self) -> float:
        if not self.reference_gadgets:
            return 0.0
        return self.surviving_gadgets / self.reference_gadgets


def compare_builds(reference: Binary, diversified: Binary) -> DiversityReport:
    """How much of the attacker's address knowledge transfers across builds."""
    ref_gadgets = gadget_addresses(reference)
    div_gadgets = gadget_addresses(diversified)
    plt_moved = sum(
        1
        for name, address in reference.plt.items()
        if diversified.plt.get(name) != address
    )
    return DiversityReport(
        seed=int(diversified.metadata.get("seed", "0")),
        surviving_gadgets=len(ref_gadgets & div_gadgets),
        reference_gadgets=len(ref_gadgets),
        plt_moved=plt_moved,
        plt_total=len(reference.plt),
    )


def diversified_population(arch: str, version: str, seeds: Iterable[int]) -> List[Binary]:
    """Build one binary per seed — a fleet of diversified devices."""
    return [build_connman(arch, version=version, seed=seed) for seed in seeds]
