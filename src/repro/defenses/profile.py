"""Protection profiles — the paper's three levels plus the §IV mitigations.

The paper's experiment matrix uses exactly three OS-level profiles:

* ``NONE``      — no protections (stack executable, fixed layout);
* ``WX``        — W^X only (§III-B);
* ``WX_ASLR``   — W^X + ASLR (§III-C).

``canary``, ``cfi`` and ``diversity_seed`` model the suggested mitigations
(stack protectors are explicitly *disabled* in the paper's builds; CFI and
compile-time software diversity are §IV future defenses).
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class ProtectionProfile:
    wx: bool = False
    aslr: bool = False
    canary: bool = False
    cfi: bool = False
    #: §VII lightweight defense: XOR-encrypted saved return addresses.
    ret_guard: bool = False
    diversity_seed: int = 0
    #: libc-slide entropy in pages (the E10 sweep varies this); 256 pages
    #: is the 32-bit mmap default the paper's targets shipped with.
    aslr_entropy_pages: int = 256

    def label(self) -> str:
        enabled = []
        if self.wx:
            enabled.append("W^X")
        if self.aslr:
            enabled.append("ASLR")
        if self.canary:
            enabled.append("canary")
        if self.cfi:
            enabled.append("CFI")
        if self.ret_guard:
            enabled.append("ret-guard")
        if self.diversity_seed:
            enabled.append(f"diversity#{self.diversity_seed}")
        return "+".join(enabled) if enabled else "none"

    def with_(self, **changes) -> "ProtectionProfile":
        return replace(self, **changes)


NONE = ProtectionProfile()
WX = ProtectionProfile(wx=True)
WX_ASLR = ProtectionProfile(wx=True, aslr=True)
FULL = ProtectionProfile(wx=True, aslr=True, canary=True, cfi=True)

#: The paper's §III protection ladder, in presentation order.
PAPER_LEVELS = (("none", NONE), ("W^X", WX), ("W^X+ASLR", WX_ASLR))
