"""Command-line interface: drive the reproduction from a shell.

::

    python -m repro matrix                 # the six-attack table
    python -m repro experiments --only E1,E5
    python -m repro experiments --list     # the experiment registry
    python -m repro run E15 --checkpoint /tmp/e15.ckpt --results e15.jsonl
    python -m repro run E14 --grid trials=4,8 --workers 2 --results e14.jsonl
    python -m repro report --results e15.jsonl   # render from the artifact
    python -m repro dos --arch arm
    python -m repro pineapple
    python -m repro audit
    python -m repro gadgets --arch arm --contains "blx"
    python -m repro recon --arch x86 --aslr
    python -m repro trace --arch arm --level wx+aslr
    python -m repro autogen --arch arm --level wx
    python -m repro bruteforce
    python -m repro offpath --burst 2048
    python -m repro chaos --rates 0,0.2,0.5 --workers 2
    python -m repro bench --emit benchmarks/BENCH.json
    python -m repro bench --compare benchmarks/BENCH.json   # regression gate
    python -m repro dash --once --json      # campaign dashboard (series + SLOs)
    python -m repro dash --scenario crash --once            # forced-crash board
    python -m repro trace-events --json     # observed chaos point: event trace
    python -m repro metrics --json          # same run, metrics registry
    python -m repro metrics --openmetrics   # OpenMetrics text exposition
    python -m repro pcap                    # faulty LAN capture, reprocap text
    python -m repro spans                   # span tree of one wire-to-verdict attack
    python -m repro trace-export --chrome   # Perfetto-loadable Chrome trace JSON
    python -m repro postmortem              # forced crash, gdb-style crash report
    python -m repro postmortem --taint --json  # report embeds wire-offset taint
    python -m repro taint --scenario crash  # wire offset -> memory -> PC chain
    python -m repro pcap --taint --sniff    # capture with tainted-PC datagram marks
"""

from __future__ import annotations

import argparse
import random
import sys
from typing import Callable, Dict, List, Optional

from .connman import ConnmanDaemon
from .cpu import TraceRecorder
from .defenses import NONE, WX, WX_ASLR, ProtectionProfile
from .dns import SimpleDnsServer
from .core import (
    AttackScenario,
    attacker_knowledge,
    e5_pineapple,
    e6_firmware_survey,
    render_table,
    run_chaos_sweep,
    run_paper_matrix,
)
from .core.registry import all_experiments
from .exploit import (
    AslrBruteForcer,
    AutoExploiter,
    GadgetFinder,
    OffPathSpoofer,
    builder_for,
    deliver,
)
from .obs import DEFAULT_SAMPLE_INTERVAL

LEVELS: Dict[str, ProtectionProfile] = {
    "none": NONE,
    "wx": WX,
    "wx+aslr": WX_ASLR,
}

#: Compatibility view of the experiment registry (id -> runner).  The
#: registry in :mod:`repro.core.registry` is the source of truth; this
#: dict exists because examples and tests address experiments by id.
EXPERIMENTS: Dict[str, Callable] = {
    spec.id: spec.runner for spec in all_experiments()
}


def _render_artifact_tables(document) -> None:
    """Print one results artifact's experiment tables (report body)."""
    for row in document["rows"]:
        result = row.get("result")
        if result is None:
            error = row.get("error") or {}
            print(f"{document['header']['experiment']} trial {row['index']}: "
                  f"QUARANTINED after {error.get('attempts', '?')} attempt(s): "
                  f"{error.get('error', 'unknown failure')}")
            continue
        print(render_table(result["headers"], [tuple(r) for r in result["rows"]],
                           title=f"{result['experiment']}: {result['title']}"))
        if result.get("notes"):
            print(result["notes"])


def cmd_report(args) -> int:
    """Print every measured experiment table (EXPERIMENTS.md body).

    Every experiment runs through the registry and renders from its
    ``repro-results/v1`` document — the same artifact ``repro run
    --results`` writes, ``--results PATH`` re-reads, and ``--emit-results
    DIR`` persists for the dash/bench consumers.
    """
    import json
    import os

    from .core.registry import results_ok, run_experiment
    from .core.resume import load_results, write_results

    documents = []
    if getattr(args, "results", None):
        for path in args.results:
            try:
                header, rows = load_results(path)
            except (OSError, ValueError) as error:
                print(f"repro report: cannot read results artifact {path}: "
                      f"{error}", file=sys.stderr)
                return 2
            documents.append({"header": header, "rows": rows})
    else:
        for spec in all_experiments():
            documents.append(run_experiment(spec).to_artifact())
        if getattr(args, "emit_results", None):
            os.makedirs(args.emit_results, exist_ok=True)
            for document in documents:
                path = os.path.join(
                    args.emit_results,
                    f"{document['header']['experiment']}.jsonl")
                write_results(path, document["header"], document["rows"])
            print(f"wrote {len(documents)} repro-results/v1 artifacts to "
                  f"{args.emit_results}", file=sys.stderr)
    if getattr(args, "json", False):
        print(json.dumps(documents, indent=2, sort_keys=True))
    else:
        for document in documents:
            _render_artifact_tables(document)
            print()
    return 0 if all(results_ok(doc["rows"]) for doc in documents) else 1


def _add_arch(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--arch", choices=("x86", "arm"), default="x86")


def _add_level(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--level", choices=sorted(LEVELS), default="none",
                        help="victim protection level")


def cmd_matrix(_args) -> int:
    results = run_paper_matrix()
    print(render_table(
        ("arch", "protections", "strategy", "outcome"),
        [result.row() for result in results],
        title="§III experiment matrix",
    ))
    return 0 if all(result.succeeded for result in results) else 1


def cmd_experiments(args) -> int:
    from .core.registry import REGISTRY, render_registry_table, run_experiment

    if getattr(args, "list", False):
        print(render_registry_table())
        return 0
    wanted = [name.strip().upper() for name in args.only.split(",")] if args.only else list(REGISTRY)
    status = 0
    for name in wanted:
        if name not in REGISTRY:
            print(f"unknown experiment {name!r}; known: {', '.join(REGISTRY)}",
                  file=sys.stderr)
            return 2
        run = run_experiment(name)
        print(run.describe())
        print()
        if not run.ok:
            status = 1
    return status


def _parse_value(text: str):
    """Literal-eval a CLI parameter value, falling back to the raw string."""
    import ast

    try:
        return ast.literal_eval(text)
    except (ValueError, SyntaxError):
        return text


def cmd_run(args) -> int:
    """Run one registered experiment: grids, checkpoints, results artifact.

    The registry-driven entry point.  ``--grid key=v1,v2`` widens a spec
    axis into a sharded sweep, ``--checkpoint``/``--resume`` journal it
    (per inner trial for experiments that support it, per grid point
    otherwise), and ``--results PATH`` writes the ``repro-results/v1``
    artifact that ``repro report --results``, ``repro dash --results``,
    and the bench gate consume.
    """
    import json
    import os

    from .core import CheckpointMismatch, RunPolicy, TaskError
    from .core.registry import get_experiment, run_experiment
    from .core.resume import write_results
    from .obs import Collector

    try:
        spec = get_experiment(args.experiment.strip().upper())
    except KeyError as error:
        print(f"repro run: {error.args[0]}", file=sys.stderr)
        return 2
    grid = {}
    for item in args.grid or []:
        key, sep, values = item.partition("=")
        if not sep or not key.strip():
            print(f"repro run: --grid wants KEY=V1,V2,... got {item!r}",
                  file=sys.stderr)
            return 2
        grid[key.strip()] = tuple(_parse_value(value)
                                  for value in values.split(","))
    params = {}
    for item in args.set or []:
        key, sep, value = item.partition("=")
        if not sep or not key.strip():
            print(f"repro run: --set wants KEY=VALUE, got {item!r}",
                  file=sys.stderr)
            return 2
        params[key.strip()] = _parse_value(value)
    checkpoint = args.resume or args.checkpoint
    resume = args.resume is not None
    if (not resume and checkpoint and os.path.exists(checkpoint)
            and os.path.getsize(checkpoint) > 0):
        print(f"repro run: checkpoint {checkpoint!r} already has journaled "
              "trials; pass --resume to continue it or remove the file to "
              "start over", file=sys.stderr)
        return 2
    policy = None
    if args.trial_timeout is not None or args.retries is not None:
        policy = RunPolicy(
            timeout=args.trial_timeout if args.trial_timeout is not None else 120.0,
            retries=args.retries if args.retries is not None else 2,
            on_failure="quarantine")
    sweep_observer = Collector()
    try:
        run = run_experiment(
            spec, grid=grid or None, params=params or None,
            workers=args.workers, policy=policy, checkpoint=checkpoint,
            resume=resume, sweep_observer=sweep_observer)
    except CheckpointMismatch as error:
        print(f"repro run: {error}", file=sys.stderr)
        return 2
    except ValueError as error:  # unknown grid/param name
        print(f"repro run: {error}", file=sys.stderr)
        return 2
    except TaskError as error:
        print(f"repro run: {error}", file=sys.stderr)
        return 1
    if args.results:
        write_results(args.results, run.artifact_header(), run.artifact_rows())
    # stdout is the artifact (tables or JSON); harness health and SLO
    # verdicts go to stderr so clean and resumed runs byte-compare.
    if args.json:
        print(json.dumps(run.to_artifact(), indent=2, sort_keys=True))
    else:
        print(run.describe())
    if run.stats is not None:
        print(run.stats.describe(), file=sys.stderr)
    print(run.slo_report.describe(), file=sys.stderr)
    for trial in run.trials:
        if trial.failure is not None:
            print(f"repro run: {trial.failure.describe()}", file=sys.stderr)
    return 0 if run.ok and run.slo_report.ok else 1


def cmd_dos(args) -> int:
    from .core import naive_overflow_blob
    from .dns import build_raw_response, make_query

    for version in ("1.34", "1.35"):
        daemon = ConnmanDaemon(arch=args.arch, version=version, profile=WX_ASLR)
        query = make_query(0xD05, "crash.example")
        reply = build_raw_response(query, naive_overflow_blob())
        event = daemon.handle_upstream_reply(reply, expected_id=0xD05)
        state = "alive" if daemon.alive else "DOWN"
        print(f"connman {version} / {args.arch}: {event.describe()[:64]} [{state}]")
    return 0


def cmd_pineapple(_args) -> int:
    result = e5_pineapple()
    print(result.describe())
    return 0 if result.all_pass else 1


def cmd_audit(_args) -> int:
    from .firmware import ALL_CVES

    print(e6_firmware_survey().describe())
    print()
    print("CVE database:")
    for cve in ALL_CVES:
        print(f"  {cve.cve_id:<15} {cve.component:<17} {cve.protocol:<5} "
              f"[{cve.adaptation_effort}]")
    return 0


def cmd_gadgets(args) -> int:
    from .binfmt import build_connman

    binary = build_connman(args.arch, seed=args.seed)
    finder = GadgetFinder(binary)
    if args.census:
        for category, count in sorted(finder.census().items(), key=lambda kv: -kv[1]):
            print(f"  {count:5d}  {category}")
        print(finder.summary())
        return 0
    gadgets = finder.all_gadgets()
    shown = 0
    for gadget in gadgets:
        if args.contains and args.contains not in gadget.text:
            continue
        print(gadget)
        shown += 1
        if shown >= args.limit:
            print(f"... ({len(gadgets)} total)")
            break
    print(finder.summary())
    return 0


def cmd_recon(args) -> int:
    profile = WX_ASLR if args.aslr else NONE
    knowledge = attacker_knowledge(AttackScenario(args.arch, "cli", profile))
    print(knowledge.describe())
    print(f"  ret offset        : name+{knowledge.ret_offset}")
    print(f"  .bss scratch      : {knowledge.bss:#010x}")
    for name, address in sorted(knowledge.plt.items()):
        print(f"  {name + '@plt':<18}: {address:#010x}")
    for name, address in sorted(knowledge.libc.items()):
        suffix = " (assumed)" if knowledge.libc_is_assumed else ""
        print(f"  libc {name:<13}: {address:#010x}{suffix}")
    return 0


def cmd_trace(args) -> int:
    profile = LEVELS[args.level]
    victim = ConnmanDaemon(arch=args.arch, profile=profile)
    recorder = TraceRecorder(limit=args.limit)
    victim.loaded.process.trace = recorder
    knowledge = attacker_knowledge(AttackScenario(args.arch, args.level, profile))
    exploit = builder_for(args.arch, profile).build(knowledge)
    report = deliver(exploit, victim)
    print(f"exploit : {exploit.describe()}")
    print(f"outcome : {report.event.describe()}")
    print("trace (hijacked control flow):")
    print(recorder.describe())
    return 0 if report.got_root_shell else 1


def cmd_listing(args) -> int:
    """Print the paper-Listing-style rendering of one exploit's chain."""
    from .exploit import render_exploit_listing

    profile = LEVELS[args.level]
    knowledge = attacker_knowledge(AttackScenario(args.arch, args.level, profile))
    exploit = builder_for(args.arch, profile).build(knowledge)
    print(render_exploit_listing(exploit))
    return 0


def cmd_autogen(args) -> int:
    victim = ConnmanDaemon(arch=args.arch, profile=LEVELS[args.level])
    result = AutoExploiter(victim).run()
    print(result.describe())
    return 0 if result.succeeded else 1


def cmd_bruteforce(args) -> int:
    victim = ConnmanDaemon(arch="x86", profile=WX_ASLR, rng=random.Random(args.seed))
    forcer = AslrBruteForcer(victim, max_attempts=args.max_attempts,
                             rng=random.Random(args.seed + 1))
    result = forcer.run()
    print(result.describe())
    return 0 if result.succeeded else 1


def _parse_rates(text: str) -> tuple:
    try:
        rates = tuple(float(rate) for rate in text.split(","))
    except ValueError:
        raise SystemExit(f"repro chaos: invalid --rates {text!r} "
                         "(want comma-separated floats, e.g. 0,0.2,0.5)")
    if any(rate < 0.0 or rate > 1.0 for rate in rates):
        raise SystemExit(f"repro chaos: --rates values must be in [0, 1], got {text!r}")
    return rates


def cmd_chaos(args) -> int:
    """Sweep fault rates: client availability vs. attack success."""
    import json
    import os

    from .core import CheckpointMismatch, RunPolicy
    from .obs import (SWEEP_SLOS, Collector, SloRuleError, TimeSeriesStore,
                      evaluate_slos, parse_rule)

    rates = _parse_rates(args.rates)
    checkpoint = args.resume or args.checkpoint
    resume = args.resume is not None
    if (not resume and checkpoint and os.path.exists(checkpoint)
            and os.path.getsize(checkpoint) > 0):
        print(f"repro chaos: checkpoint {checkpoint!r} already has journaled "
              "trials; pass --resume to continue it or remove the file to "
              "start over", file=sys.stderr)
        return 2
    policy = RunPolicy(timeout=args.trial_timeout, retries=args.retries,
                       on_failure="quarantine")
    try:
        health_slos = tuple(
            parse_rule(rule) for rule in args.health_slo
        ) if args.health_slo else SWEEP_SLOS
    except SloRuleError as exc:
        print(f"repro chaos: {exc}", file=sys.stderr)
        return 2
    # Two collectors, deliberately: the scientific observer feeds the
    # deterministic artifact; the sweep observer records wall-clock harness
    # health (retries, timeouts, respawns) that must never leak into it.
    sweep_observer = Collector()
    try:
        report = run_chaos_sweep(
            rates,
            seed=args.seed,
            queries_per_rate=args.queries,
            attack_budget=args.attack_budget,
            observer=Collector(series=TimeSeriesStore()),
            workers=args.workers,
            policy=policy,
            checkpoint=checkpoint,
            resume=resume,
            sweep_observer=sweep_observer,
            taint=args.taint,
        )
    except CheckpointMismatch as exc:
        print(f"repro chaos: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(report.describe())
    # Harness health goes to stderr so stdout stays a pure artifact that
    # byte-compares across interrupted-then-resumed and clean runs.
    if report.health is not None:
        print(report.health.describe(), file=sys.stderr)
    slo_report = evaluate_slos(health_slos, sweep_observer, emit=False)
    print(slo_report.describe(), file=sys.stderr)
    for failure in report.failures:
        print(f"repro chaos: {failure.describe()}", file=sys.stderr)
    return 0 if not report.failures and slo_report.ok else 1


def _observed_chaos_run(args):
    """One observed chaos point: the CLI's canonical traced scenario."""
    from .core import run_chaos_point
    from .obs import Collector, TimeSeriesStore

    collector = Collector(series=TimeSeriesStore())
    cell = run_chaos_point(
        args.level,
        seed=args.seed,
        queries=args.queries,
        attack_budget=args.attack_budget,
        observer=collector,
    )
    collector.sample()  # flush a final sample at the scenario's end clock
    return cell, collector


def _add_observed_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--level", type=float, default=0.3,
                        help="fault level for the observed run")
    parser.add_argument("--seed", type=int, default=0xB5EC)
    parser.add_argument("--queries", type=int, default=16)
    parser.add_argument("--attack-budget", type=int, default=12)
    parser.add_argument("--json", action="store_true", help="machine-readable output")


def cmd_trace_events(args) -> int:
    """Run an observed chaos point and print its structured event trace."""
    import json

    if args.limit is not None and args.limit < 0:
        print(f"repro trace-events: --limit must be >= 0, got {args.limit}",
              file=sys.stderr)
        return 2
    _cell, collector = _observed_chaos_run(args)
    if args.json:
        print(json.dumps(collector.to_dict(last_events=args.limit), indent=2))
    else:
        print(collector.summary())
        print(collector.bus.describe(last=args.limit))
    return 0


def cmd_metrics(args) -> int:
    """Run an observed chaos point and print the metrics registry."""
    import json

    _cell, collector = _observed_chaos_run(args)
    if args.openmetrics:
        from .obs import export_openmetrics

        print(export_openmetrics(collector), end="")
    elif args.json:
        print(json.dumps(collector.metrics.to_dict(), indent=2))
    else:
        print(collector.summary())
        print(collector.metrics.describe())
    return 0


def _observed_attack_run(args):
    """One span-traced wire-to-verdict attack (the tracing CLI's scenario)."""
    from .core import run_observed_attack

    return run_observed_attack(arch=args.arch, level_label=args.level,
                               seed=args.seed)


def cmd_spans(args) -> int:
    """Render the span tree of one observed end-to-end attack."""
    import json

    run = _observed_attack_run(args)
    if args.json:
        print(json.dumps(run.collector.tracer.to_dicts(), indent=2))
    else:
        verdict = run.event.kind.value if run.event is not None else run.error
        print(f"{run.exploit.name if run.exploit else '(no exploit)'} -> {verdict}")
        print(run.collector.tracer.render_tree())
    return 0


def cmd_trace_export(args) -> int:
    """Export one observed attack as Chrome trace-event JSON (Perfetto)."""
    import json

    from .core import run_observed_attack
    from .obs import (Collector, TimeSeriesStore, export_chrome_trace,
                      validate_chrome_trace)

    # A series-attached collector so the export carries Perfetto counter
    # tracks (ph "C") alongside the span events.
    collector = Collector(series=TimeSeriesStore(interval=1.0))
    run = run_observed_attack(arch=args.arch, level_label=args.level,
                              seed=args.seed, observer=collector)
    collector.sample()
    document = export_chrome_trace(run.collector)
    validate_chrome_trace(document)
    print(json.dumps(document, indent=None if args.compact else 2))
    return 0


def cmd_profile(args) -> int:
    """Deterministic cost attribution for one observed scenario.

    Runs the selected scenario with a :class:`DeterministicProfiler`
    riding the collector and prints, by flag: the text attribution
    report (default), folded stacks for ``flamegraph.pl`` (``--folded``),
    a speedscope JSON document (``--speedscope``), or the full profile
    payload (``--json``).  Sampling happens on the simulated step clock,
    so the output is a pure function of the scenario seed.
    """
    import json

    from .obs import Collector, DeterministicProfiler, render_profile

    collector = Collector()
    profiler = collector.attach_profiler(
        DeterministicProfiler(sample_interval=args.sample_interval))
    if args.scenario == "chaos":
        from .core import run_chaos_point

        # The chaos scenario is the x86 daemon under LAN faults; --arch
        # is ignored here (see the subparser help).
        run_chaos_point(args.fault_level, seed=args.seed,
                        queries=args.queries,
                        attack_budget=args.attack_budget, observer=collector)
    elif args.scenario == "crash":
        from .core import run_forced_crash

        run_forced_crash(arch=args.arch, seed=args.seed, observer=collector)
    else:  # attack
        from .core import run_observed_attack

        run_observed_attack(arch=args.arch, level_label=args.level,
                            seed=args.seed, observer=collector)
    if args.folded:
        print(profiler.folded(), end="")
    elif args.speedscope:
        from .obs import validate_speedscope

        document = profiler.speedscope(
            name=f"repro {args.scenario} ({args.arch})")
        validate_speedscope(document)
        print(json.dumps(document, indent=2))
    elif args.json:
        print(json.dumps(profiler.to_dict(), indent=2))
    else:
        print(render_profile(profiler.data, top=args.top))
    return 0


def cmd_postmortem(args) -> int:
    """Force the CVE-2017-12865 crash and print its crash report."""
    import json

    from .core import run_forced_crash

    run = run_forced_crash(arch=args.arch, seed=args.seed, taint=args.taint)
    report = run.collector.last_postmortem
    if report is None:
        print("no crash captured (daemon survived?)", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(report.render())
        print()
        print(run.collector.tracer.render_tree())
    return 0


def cmd_taint(args) -> int:
    """Byte-level taint provenance: wire offsets -> memory -> registers -> PC."""
    import json

    from .obs import Collector, TaintEngine, render_provenance

    collector = Collector()
    engine = collector.attach_taint(TaintEngine())
    if args.scenario == "crash":
        from .core import run_forced_crash

        run_forced_crash(arch=args.arch, seed=args.seed, observer=collector)
    else:  # attack
        from .core import run_observed_attack

        run_observed_attack(arch=args.arch, level_label=args.level,
                            seed=args.seed, observer=collector)
    if args.json:
        print(json.dumps(engine.to_dict(), indent=2))
    else:
        print(render_provenance(engine))
    return 0


def cmd_pcap(args) -> int:
    """Capture a faulty LAN exchange and print the reprocap text document."""
    from .dns import SimpleDnsServer, make_query
    from .net import DNS_PORT, FaultPolicy, Host, Network
    from .obs import export_pcap_text, sniff_capture

    if args.taint:
        # Capture the forced-crash exchange under the taint engine so the
        # document marks the datagram whose bytes reached the guest PC.
        from .core import run_forced_crash
        from .obs import Collector, TaintEngine

        collector = Collector()
        engine = collector.attach_taint(TaintEngine())
        run = run_forced_crash(arch=args.arch, seed=args.seed,
                               observer=collector)
        text = export_pcap_text(run.network, taint=engine)
        if args.sniff:
            for packet in sniff_capture(text):
                marker = (" [bytes reached tainted PC]"
                          if engine.datagram_reached_pc(packet.datagram.payload)
                          else "")
                print(packet.describe() + marker)
        else:
            print(text, end="")
        return 0
    policy = FaultPolicy(args.seed, corrupt=args.corrupt, duplicate=args.duplicate)
    network = Network("capture-lan", subnet_prefix="10.77.0", faults=policy)
    server = Host("dns-server")
    network.attach(server, ip="10.77.0.1")
    dns = SimpleDnsServer(default_address="203.0.113.77")
    server.bind_udp(DNS_PORT, lambda payload, _dgram: dns.handle_query(payload))
    client = Host("client")
    network.attach(client)
    for number in range(args.queries):
        query = make_query(0x7000 + number, f"host{number}.capture.example")
        client.send_udp(server.ip, DNS_PORT, query.encode())
    text = export_pcap_text(network)
    if args.sniff:
        # Round-trip: parse the text document back and re-analyze it.
        for packet in sniff_capture(text):
            print(packet.describe())
    else:
        print(text, end="")
    return 0


def cmd_bench(args) -> int:
    """Emulator microbenchmark: decode-cache on/off, committed baseline.

    ``--compare PATH`` turns the run into the regression gate: the fresh
    payload is measured against the committed baseline and a perf-history
    line is appended to the trajectory file.  Any validation failure or
    gate regression exits non-zero with a message on stderr.
    """
    import json

    from .core import (append_trajectory, collect_baseline, compare_baseline,
                       describe_attribution, describe_comparison,
                       profile_attribution, trajectory_entry,
                       validate_baseline)

    try:
        payload = validate_baseline(collect_baseline(steps=args.steps))
    except ValueError as error:
        print(f"repro bench: fresh payload failed validation: {error}",
              file=sys.stderr)
        return 1
    attribution = None
    if getattr(args, "profile", False):
        attribution = profile_attribution(steps=args.steps)
        print(describe_attribution(attribution))
    text = json.dumps(payload, indent=2, sort_keys=True)
    if args.emit:
        with open(args.emit, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"wrote {args.emit}")
    for entry in payload["benchmarks"]:
        if entry["kind"] == "blocks":
            detail = (f"{entry['block_step_share']:.1%} of steps through "
                      f"compiled blocks")
        else:
            detail = f"{entry['decode_call_ratio']:.1f}x fewer decode() calls"
        print(f"BENCH {entry['name']}: {detail}, "
              f"{entry['wall_speedup']:.2f}x wall speedup "
              f"({entry['cached']['steps_per_s']:,.0f} steps/s cached)")
    # Correctness leg of the gate: a repro-results/v1 artifact from a
    # registry run must be all-pass for the bench verdict to stay green.
    results_gate_ok = True
    if getattr(args, "results", None):
        from .core.registry import results_ok
        from .core.resume import load_results

        try:
            header, rows = load_results(args.results)
        except (OSError, ValueError) as error:
            print(f"repro bench: cannot read results artifact "
                  f"{args.results}: {error}", file=sys.stderr)
            return 1
        results_gate_ok = results_ok(rows)
        verdict = "ok" if results_gate_ok else "FAIL"
        print(f"results gate [{verdict}]: {header['experiment']} "
              f"({header['total']} trials, grid {header['grid_hash']})")
        if not results_gate_ok:
            print(f"repro bench: results artifact {args.results} carries "
                  "failed or unexpected trials", file=sys.stderr)
    if args.compare:
        try:
            with open(args.compare, "r", encoding="utf-8") as handle:
                committed = json.load(handle)
        except (OSError, json.JSONDecodeError) as error:
            print(f"repro bench: cannot read baseline {args.compare}: {error}",
                  file=sys.stderr)
            return 1
        try:
            result = compare_baseline(committed, payload)
        except ValueError as error:
            print(f"repro bench: baseline {args.compare} failed validation: "
                  f"{error}", file=sys.stderr)
            return 1
        print(describe_comparison(result))
        trajectory = args.trajectory or "benchmarks/trajectory.jsonl"
        append_trajectory(trajectory, trajectory_entry(
            payload, result["ok"], attribution=attribution))
        print(f"trajectory: appended to {trajectory}")
        if not result["ok"]:
            print("repro bench: performance regression against "
                  f"{args.compare}", file=sys.stderr)
            return 1
        return 0 if results_gate_ok else 1
    if not args.emit:
        print(text)
    return 0 if results_gate_ok else 1


def _dash_collector(args):
    """Run the selected scenario under a series-attached collector."""
    from .obs import Collector, DeterministicProfiler, TimeSeriesStore

    collector = Collector(series=TimeSeriesStore(interval=args.interval))
    collector.attach_profiler(DeterministicProfiler())
    if args.scenario == "chaos":
        from .core import run_chaos_point

        run_chaos_point(args.level, seed=args.seed, queries=args.queries,
                        attack_budget=args.attack_budget, observer=collector)
    elif args.scenario == "crash":
        from .core import run_forced_crash

        run_forced_crash(seed=args.seed, observer=collector)
    else:  # attack
        from .core import run_observed_attack

        run_observed_attack(seed=args.seed, observer=collector)
    collector.sample()  # flush a final sample at the scenario's end clock
    return collector


def cmd_dash(args) -> int:
    """Campaign dashboard: series sparklines, SLO verdicts, top spans."""
    import time

    from .obs import (DEFAULT_SLOS, SloRuleError, dashboard_json,
                      evaluate_slos, parse_rule, render_dashboard)
    from .obs.dashboard import CLEAR, frame_times

    try:
        rules = ([parse_rule(text) for text in args.slo]
                 if args.slo else list(DEFAULT_SLOS))
    except SloRuleError as error:
        print(f"repro dash: {error}", file=sys.stderr)
        return 2
    # Results artifacts ride along on the board: each panel renders the
    # per-trial verdicts and failing trials flip the gate exit code.
    documents = []
    for path in args.results or []:
        from .core.resume import load_results

        try:
            header, rows = load_results(path)
        except (OSError, ValueError) as error:
            print(f"repro dash: cannot read results artifact {path}: {error}",
                  file=sys.stderr)
            return 2
        documents.append({"header": header, "rows": rows})
    collector = _dash_collector(args)
    color = not args.no_color
    if not args.once:
        # Replay the recorded campaign as live frames: each frame truncates
        # the series at a later simulated moment and re-evaluates the SLOs
        # read-only at that moment (no breach events, no counter changes).
        for moment in frame_times(collector, args.frames):
            report = evaluate_slos(rules, collector, at=moment, emit=False)
            frame = render_dashboard(collector, report, until=moment,
                                     color=color)
            print((CLEAR if color else "") + frame)
            if args.fps > 0:
                time.sleep(1.0 / args.fps)
    report = evaluate_slos(rules, collector)
    from .core.registry import render_results_panel, results_ok

    artifacts_ok = all(results_ok(doc["rows"]) for doc in documents)
    if args.json:
        import json as _json

        payload = _json.loads(dashboard_json(collector, report,
                                             scenario=args.scenario))
        if documents:
            payload["results"] = documents
        print(_json.dumps(payload, indent=2))
    else:
        print(render_dashboard(collector, report, color=color))
        for document in documents:
            print()
            print(render_results_panel(document["header"], document["rows"]))
    return 0 if report.ok and artifacts_ok else 1


def cmd_offpath(args) -> int:
    profile = WX_ASLR
    knowledge = attacker_knowledge(AttackScenario("arm", "cli", profile))
    exploit = builder_for("arm", profile).build(knowledge)
    victim = ConnmanDaemon(arch="arm", profile=profile, rng=random.Random(args.seed))
    spoofer = OffPathSpoofer(exploit, burst=args.burst, rng=random.Random(args.seed + 1))
    legit = SimpleDnsServer(default_address="1.1.1.1")
    result = spoofer.attack(victim, legit.handle_query, max_queries=args.max_queries)
    print(result.describe())
    return 0 if result.succeeded else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DSN'19 Connman CVE-2017-12865 reproduction (simulated substrate)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("matrix", help="run the six-attack §III matrix").set_defaults(run=cmd_matrix)
    report = subparsers.add_parser("report", help="print every measured experiment table")
    report.add_argument("--json", action="store_true", help="machine-readable output")
    report.add_argument("--results", action="append", metavar="PATH",
                        help="render from existing repro-results/v1 "
                             "artifact(s) instead of re-running (repeatable)")
    report.add_argument("--emit-results", metavar="DIR",
                        help="also write one repro-results/v1 artifact per "
                             "experiment into DIR")
    report.set_defaults(run=cmd_report)

    experiments = subparsers.add_parser("experiments", help="run paper experiments")
    experiments.add_argument("--only", help="comma-separated ids, e.g. E1,E5")
    experiments.add_argument("--list", action="store_true",
                             help="print the experiment registry (ids, grids, "
                                  "passthrough capabilities) without running")
    experiments.set_defaults(run=cmd_experiments)

    run = subparsers.add_parser(
        "run", help="run one registered experiment (grids, checkpoints, "
                    "repro-results/v1 artifact)")
    run.add_argument("experiment", help="registry id, e.g. E15")
    run.add_argument("--workers", type=int, default=1,
                     help="fan grid/inner trials out over N processes "
                          "(0 = one per CPU); output matches --workers 1")
    run.add_argument("--grid", action="append", metavar="KEY=V1,V2",
                     help="widen a spec parameter into a sweep axis "
                          "(repeatable; values literal-eval'd)")
    run.add_argument("--set", action="append", metavar="KEY=VALUE",
                     help="pin one spec parameter (repeatable)")
    journal = run.add_mutually_exclusive_group()
    journal.add_argument("--checkpoint", metavar="PATH",
                         help="journal completed trials to an append-only "
                              "JSONL checkpoint at PATH")
    journal.add_argument("--resume", metavar="PATH",
                         help="resume a killed run from its checkpoint; only "
                              "unfinished trials re-execute and the results "
                              "artifact is byte-identical to an uninterrupted "
                              "run (PATH is trusted input: payloads are "
                              "unpickled, restricted to repro classes)")
    run.add_argument("--trial-timeout", type=float, default=None,
                     help="wall-clock seconds before a hung trial's pool is "
                          "respawned (enables quarantine supervision)")
    run.add_argument("--retries", type=int, default=None,
                     help="retry budget per trial before quarantine "
                          "(enables quarantine supervision)")
    run.add_argument("--results", metavar="PATH",
                     help="write the repro-results/v1 artifact to PATH")
    run.add_argument("--json", action="store_true",
                     help="print the artifact document instead of tables")
    run.set_defaults(run=cmd_run)

    dos = subparsers.add_parser("dos", help="E1 crash PoC")
    _add_arch(dos)
    dos.set_defaults(run=cmd_dos)

    subparsers.add_parser("pineapple", help="E5 remote MITM").set_defaults(run=cmd_pineapple)
    subparsers.add_parser("audit", help="E6 firmware survey + CVE db").set_defaults(run=cmd_audit)

    gadgets = subparsers.add_parser("gadgets", help="scan the Connman image for gadgets")
    _add_arch(gadgets)
    gadgets.add_argument("--seed", type=int, default=0, help="diversity build seed")
    gadgets.add_argument("--contains", help="filter by substring of the gadget text")
    gadgets.add_argument("--limit", type=int, default=40)
    gadgets.add_argument("--census", action="store_true",
                         help="print category counts instead of a listing")
    gadgets.set_defaults(run=cmd_gadgets)

    recon = subparsers.add_parser("recon", help="attacker recon summary")
    _add_arch(recon)
    recon.add_argument("--aslr", action="store_true", help="victim has ASLR (blind recon)")
    recon.set_defaults(run=cmd_recon)

    trace = subparsers.add_parser("trace", help="run one attack with an execution trace")
    _add_arch(trace)
    _add_level(trace)
    trace.add_argument("--limit", type=int, default=64)
    trace.set_defaults(run=cmd_trace)

    listing = subparsers.add_parser("listing", help="paper-Listing view of a chain")
    _add_arch(listing)
    _add_level(listing)
    listing.set_defaults(run=cmd_listing)

    autogen = subparsers.add_parser("autogen", help="§VII automated strategy ladder")
    _add_arch(autogen)
    _add_level(autogen)
    autogen.set_defaults(run=cmd_autogen)

    bruteforce = subparsers.add_parser("bruteforce", help="E10 ASLR brute force")
    bruteforce.add_argument("--max-attempts", type=int, default=4096)
    bruteforce.add_argument("--seed", type=int, default=99)
    bruteforce.set_defaults(run=cmd_bruteforce)

    chaos = subparsers.add_parser("chaos", help="fault-rate sweep (E16 chaos table)")
    chaos.add_argument("--rates", default="0,0.2,0.5",
                       help="comma-separated fault levels, e.g. 0,0.1,0.3")
    chaos.add_argument("--seed", type=int, default=0xC4A05)
    chaos.add_argument("--queries", type=int, default=24,
                       help="client queries per fault level")
    chaos.add_argument("--attack-budget", type=int, default=32,
                       help="brute-force attempts per fault level")
    chaos.add_argument("--workers", type=int, default=1,
                       help="fan sweep points out over N processes "
                            "(0 = one per CPU); cells match --workers 1")
    chaos.add_argument("--json", action="store_true", help="machine-readable output")
    journal = chaos.add_mutually_exclusive_group()
    journal.add_argument("--checkpoint", metavar="PATH",
                         help="journal completed trials to an append-only "
                              "JSONL checkpoint at PATH")
    journal.add_argument("--resume", metavar="PATH",
                         help="resume a killed sweep from its checkpoint; "
                              "only unfinished trials re-execute and the "
                              "artifact is byte-identical to an "
                              "uninterrupted run (PATH is trusted input: "
                              "payloads are unpickled, restricted to "
                              "classes from the repro package)")
    chaos.add_argument("--trial-timeout", type=float, default=120.0,
                       help="wall-clock seconds before a hung trial's pool "
                            "is respawned (default 120)")
    chaos.add_argument("--retries", type=int, default=2,
                       help="retry budget per trial before it is "
                            "quarantined (default 2)")
    chaos.add_argument("--health-slo", action="append", metavar="RULE",
                       help="sweep-health SLO gating the exit code, e.g. "
                            "'sweep.quarantined count == 0' (repeatable; "
                            "default: the built-in sweep set)")
    chaos.add_argument("--taint", action="store_true",
                       help="run every trial under the taint engine; taint.* "
                            "counters land in the artifact, outcome cells "
                            "stay byte-identical")
    chaos.set_defaults(run=cmd_chaos)

    bench = subparsers.add_parser(
        "bench", help="emulator microbenchmark (decode cache + superblocks)")
    bench.add_argument("--steps", type=int, default=12_000,
                       help="emulated instructions per measurement")
    bench.add_argument("--emit", metavar="PATH",
                       help="write the repro-bench/v2 JSON baseline to PATH")
    bench.add_argument("--compare", metavar="PATH",
                       help="regression gate: compare the fresh run against "
                            "the committed baseline at PATH")
    bench.add_argument("--trajectory", metavar="PATH", default=None,
                       help="perf-history JSONL appended in --compare mode "
                            "(default benchmarks/trajectory.jsonl)")
    bench.add_argument("--results", metavar="PATH",
                       help="also gate on a repro-results/v1 artifact: every "
                            "trial must be pass/expected")
    bench.add_argument("--profile", action="store_true",
                       help="also print deterministic cost attribution "
                            "(per-opcode/per-block) next to the wall numbers; "
                            "in --compare mode it rides into the trajectory "
                            "entry")
    bench.set_defaults(run=cmd_bench)

    dash = subparsers.add_parser(
        "dash", help="campaign dashboard: series, SLO verdicts, top spans")
    dash.add_argument("--scenario", choices=("chaos", "crash", "attack"),
                      default="chaos",
                      help="which observed scenario feeds the board")
    dash.add_argument("--level", type=float, default=0.3,
                      help="fault level for the chaos scenario")
    dash.add_argument("--seed", type=int, default=0xB5EC)
    dash.add_argument("--queries", type=int, default=16)
    dash.add_argument("--attack-budget", type=int, default=12)
    dash.add_argument("--interval", type=float, default=1.0,
                      help="series sampling interval (simulated seconds)")
    dash.add_argument("--slo", action="append", metavar="RULE",
                      help="SLO rule, e.g. 'daemon.crashes count == 0' "
                           "(repeatable; default: the built-in set)")
    dash.add_argument("--once", action="store_true",
                      help="render one final frame instead of the replay")
    dash.add_argument("--json", action="store_true",
                      help="machine-readable output (implies --once frame)")
    dash.add_argument("--no-color", action="store_true",
                      help="plain text, no ANSI escapes")
    dash.add_argument("--frames", type=int, default=12,
                      help="replay frames in live mode")
    dash.add_argument("--fps", type=float, default=8.0,
                      help="replay speed (frames/second; 0 = no delay)")
    dash.add_argument("--results", action="append", metavar="PATH",
                      help="append repro-results/v1 artifact panel(s) to the "
                           "board; failing trials flip the gate (repeatable)")
    dash.set_defaults(run=cmd_dash)

    trace_events = subparsers.add_parser(
        "trace-events", help="structured event trace of an observed chaos point")
    _add_observed_args(trace_events)
    trace_events.add_argument("--limit", type=int, default=None,
                              help="show only the last N events")
    trace_events.set_defaults(run=cmd_trace_events)

    metrics = subparsers.add_parser(
        "metrics", help="counters/histograms from an observed chaos point")
    _add_observed_args(metrics)
    metrics.add_argument("--openmetrics", action="store_true",
                         help="OpenMetrics text exposition instead of JSON")
    metrics.set_defaults(run=cmd_metrics)

    def _add_attack_args(sub: argparse.ArgumentParser) -> None:
        _add_arch(sub)
        _add_level(sub)
        sub.add_argument("--seed", type=int, default=0x0B5E)
        sub.add_argument("--json", action="store_true", help="machine-readable output")

    spans = subparsers.add_parser(
        "spans", help="span tree of one wire-to-verdict observed attack")
    _add_attack_args(spans)
    spans.set_defaults(run=cmd_spans)

    profile = subparsers.add_parser(
        "profile", help="deterministic cost attribution for one observed "
                        "scenario (opcodes, blocks, caches, flamegraphs)")
    _add_attack_args(profile)
    profile.add_argument("--scenario", choices=("attack", "crash", "chaos"),
                         default="attack",
                         help="attack = wire-to-verdict exploit (default); "
                              "crash = forced CVE-2017-12865 crash; chaos = "
                              "one x86 chaos point (--arch ignored)")
    profile.add_argument("--fault-level", type=float, default=0.3,
                         help="fault level for the chaos scenario")
    profile.add_argument("--queries", type=int, default=16,
                         help="client queries for the chaos scenario")
    profile.add_argument("--attack-budget", type=int, default=12,
                         help="brute-force attempts for the chaos scenario")
    profile.add_argument("--sample-interval", type=int,
                         default=DEFAULT_SAMPLE_INTERVAL,
                         help="guest steps between stack samples "
                              "(0 disables stack sampling)")
    profile.add_argument("--top", type=int, default=10,
                         help="rows per table in the text report")
    profile.add_argument("--folded", action="store_true",
                         help="emit folded stacks (flamegraph.pl input)")
    profile.add_argument("--speedscope", action="store_true",
                         help="emit a speedscope JSON document")
    profile.set_defaults(run=cmd_profile)

    trace_export = subparsers.add_parser(
        "trace-export", help="Chrome trace-event JSON of an observed attack")
    _add_attack_args(trace_export)
    trace_export.add_argument(
        "--chrome", action="store_true",
        help="emit Chrome trace-event JSON (the default and only format)")
    trace_export.add_argument("--compact", action="store_true",
                              help="single-line JSON")
    trace_export.set_defaults(run=cmd_trace_export)

    postmortem = subparsers.add_parser(
        "postmortem", help="force the CVE-2017-12865 crash, print forensics")
    _add_arch(postmortem)
    postmortem.add_argument("--seed", type=int, default=0xC4A5)
    postmortem.add_argument("--json", action="store_true",
                            help="machine-readable output")
    postmortem.add_argument("--taint", action="store_true",
                            help="run under the taint engine; the report "
                                 "gains the PC-provenance section and --json "
                                 "embeds the repro-taint/v1 summary")
    postmortem.set_defaults(run=cmd_postmortem)

    taint = subparsers.add_parser(
        "taint", help="taint provenance: wire offsets -> memory -> "
                      "registers -> PC")
    _add_attack_args(taint)
    taint.add_argument("--scenario", choices=("crash", "attack"),
                       default="crash",
                       help="crash = forced CVE-2017-12865 crash (default); "
                            "attack = wire-to-verdict exploit (--level "
                            "applies)")
    taint.set_defaults(run=cmd_taint)

    pcap = subparsers.add_parser(
        "pcap", help="reprocap text capture of a faulty LAN exchange")
    pcap.add_argument("--seed", type=int, default=0xCAB)
    pcap.add_argument("--queries", type=int, default=8)
    pcap.add_argument("--corrupt", type=float, default=0.25,
                      help="corrupt rate on the capture LAN")
    pcap.add_argument("--duplicate", type=float, default=0.25,
                      help="duplicate rate on the capture LAN")
    pcap.add_argument("--sniff", action="store_true",
                      help="round-trip the capture through the sniffer and "
                           "print the analysis instead of the document")
    pcap.add_argument("--taint", action="store_true",
                      help="capture the forced-crash exchange under the "
                           "taint engine instead of the faulty LAN; records "
                           "whose bytes reached a tainted PC are annotated "
                           "(--sniff marks them)")
    _add_arch(pcap)
    pcap.set_defaults(run=cmd_pcap)

    offpath = subparsers.add_parser("offpath", help="E11 off-path spoofing")
    offpath.add_argument("--burst", type=int, default=2048)
    offpath.add_argument("--max-queries", type=int, default=512)
    offpath.add_argument("--seed", type=int, default=3)
    offpath.set_defaults(run=cmd_offpath)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.run(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
