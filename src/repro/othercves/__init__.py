"""§V adaptation targets: dnsmasq/systemd/asterisk (DNS), HTTP and TCP victims."""

from .adapt import (
    AdaptationReport,
    adapt_exploit,
    deliver_to_service,
    knowledge_for_service,
)
from .victims import (
    ALL_SPECS,
    ASTERISK,
    AdaptedService,
    DNSMASQ,
    EMBEDDED_HTTPD,
    RawCopyCore,
    ROUTER_HTTPD,
    ServiceSpec,
    SYSTEMD_RESOLVED,
    TCP_SERVICE,
    http_respond,
    make_http_request,
    make_tcp_packet,
)

__all__ = [
    "adapt_exploit",
    "AdaptationReport",
    "AdaptedService",
    "ALL_SPECS",
    "ASTERISK",
    "deliver_to_service",
    "DNSMASQ",
    "EMBEDDED_HTTPD",
    "knowledge_for_service",
    "http_respond",
    "make_http_request",
    "make_tcp_packet",
    "RawCopyCore",
    "ROUTER_HTTPD",
    "ServiceSpec",
    "SYSTEMD_RESOLVED",
    "TCP_SERVICE",
]
