"""Generic vulnerable network services — the §V adaptation targets.

"Our code can work out-of-the-box (with minimal modification) against
DNS-based overflow vulnerabilities such as CVE-2017-14493 [dnsmasq],
CVE-2018-9445 [systemd] and CVE-2018-19278 [asterisk] ... With moderate
modification, our code can be adapted to work against a range of
protocol-based vulnerabilities" (HTTP: CVE-2019-8985 / CVE-2019-9125 /
CVE-2018-6692; TCP: CVE-2018-20410).

Each service is the same *shape* as Connman — a root daemon parsing
attacker-controlled bytes into an undersized stack buffer — but with its
own binary build (different gadget/PLT addresses), its own frame geometry,
and its own transport.  Adapting the exploit means re-running recon and the
builders against the new addresses, which is exactly what the paper calls
"changing variables to memory addresses suitable for the targeted
vulnerability".
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from ..binfmt import build_connman, build_libc, load_process
from ..connman import ConnmanVersion, DaemonEvent, EventKind, FrameModel
from ..connman.daemon import _resume_stop
from ..connman.dnsproxy import DnsProxyCore
from ..cpu import NativeFunction
from ..cpu.events import CanaryClobbered
from ..defenses import (
    NONE,
    ProtectionProfile,
    ReturnAddressGuard,
    ShadowStackCfi,
    StackCanary,
)
from ..mem import AslrPolicy, MemoryFault

VULNERABLE_VERSION = ConnmanVersion(0, 9)
PATCHED_VERSION = ConnmanVersion(9, 9)


@dataclass(frozen=True)
class ServiceSpec:
    """Static description of one adaptation target."""

    name: str
    cve_id: str
    arch: str
    frame: FrameModel
    protocol: str  # "dns" | "http" | "tcp"
    build_seed: int
    adaptation_effort: str

    def describe(self) -> str:
        return (
            f"{self.name} ({self.cve_id}): {self.protocol} service on {self.arch}, "
            f"{self.frame.buffer_size}-byte buffer [{self.adaptation_effort} modification]"
        )


def _frame(arch: str, buffer_size: int, horizon: int = 400) -> FrameModel:
    saved = ("ebp",) if arch == "x86" else ("r4", "r5", "r6", "r7")
    return FrameModel(
        arch=arch,
        locals_size=12 if arch == "x86" else 16,
        buffer_size=buffer_size,
        saved_registers=saved,
        null_slot_offsets=(),
        check_slot_offsets=(),
        overwrite_horizon=horizon,
    )


#: §V, "minimal modification" — same DNS transport, new addresses/offsets.
DNSMASQ = ServiceSpec("dnsmasq", "CVE-2017-14493", "x86",
                      _frame("x86", 296), "dns", 11, "minimal")
SYSTEMD_RESOLVED = ServiceSpec("systemd-resolved", "CVE-2018-9445", "arm",
                               _frame("arm", 512), "dns", 12, "minimal")
ASTERISK = ServiceSpec("asterisk", "CVE-2018-19278", "x86",
                       _frame("x86", 512), "dns", 13, "minimal")

#: §V, "moderate modification" — new packet-creation algorithm too.
ROUTER_HTTPD = ServiceSpec("router-httpd", "CVE-2019-8985", "arm",
                           _frame("arm", 256), "http", 14, "moderate")
EMBEDDED_HTTPD = ServiceSpec("embedded-httpd", "CVE-2018-6692", "x86",
                             _frame("x86", 320), "http", 15, "moderate")
TCP_SERVICE = ServiceSpec("tcp-control", "CVE-2018-20410", "x86",
                          _frame("x86", 192), "tcp", 16, "moderate")

ALL_SPECS = (DNSMASQ, SYSTEMD_RESOLVED, ASTERISK, ROUTER_HTTPD, EMBEDDED_HTTPD, TCP_SERVICE)


class RawCopyCore(DnsProxyCore):
    """Overflow core for services that copy a raw byte blob (HTTP body,
    TCP payload) into their stack buffer — no DNS label interleaving."""

    def handle_raw(self, data: bytes) -> DaemonEvent:
        place = self.placement()
        self._set_up_frame(place)
        patched = not self.version.is_vulnerable
        try:
            if patched and len(data) + 1 > self.frame.buffer_size:
                return DaemonEvent(kind=EventKind.DROPPED,
                                   detail="input exceeds buffer (patched bounds check)")
            self.loaded.process.memory.write(place.name_address, data)
            self._parse_rr_checks(place)
            self._post_parse_writes(place)
            self._null_slot_checks(place)
            self._canary_check(place)
        except CanaryClobbered as smash:
            self.loaded.process.record_exit(code=134, signal="SIGABRT")
            return DaemonEvent(kind=EventKind.CRASHED, signal="SIGABRT", detail=str(smash))
        except MemoryFault as fault:
            self.loaded.process.record_exit(code=139, signal=fault.signal)
            return DaemonEvent(kind=EventKind.CRASHED, signal=fault.signal, detail=str(fault))
        return self._function_return(place, [])


class AdaptedService:
    """A bootable instance of one adaptation target."""

    def __init__(self, spec: ServiceSpec, *, vulnerable: bool = True,
                 profile: ProtectionProfile = NONE,
                 rng: Optional[random.Random] = None):
        self.spec = spec
        self.profile = profile
        self.vulnerable = vulnerable
        self.rng = rng or random.Random(0xBEEF ^ spec.build_seed)
        self.binary = build_connman(spec.arch, version="1.34", seed=spec.build_seed)
        self.binary.name = spec.name
        self.binary.metadata["product"] = spec.name
        self.libc_image = build_libc(spec.arch)
        self.events: List[DaemonEvent] = []
        self.crashed = False
        self.loaded = None
        self.core: Optional[DnsProxyCore] = None
        self.boot()

    def boot(self) -> None:
        layout = AslrPolicy(enabled=self.profile.aslr).instantiate(self.spec.arch, self.rng)
        self.loaded = load_process(
            self.binary, self.libc_image, layout,
            wx_enabled=self.profile.wx, uid=0, name=self.spec.name,
        )
        self.loaded.process.register_native(
            self.loaded.address_of("dnsproxy_resume"),
            NativeFunction("service_resume", _resume_stop),
        )
        canary = StackCanary(self.rng) if self.profile.canary else None
        ret_guard = ReturnAddressGuard(self.rng) if self.profile.ret_guard else None
        if self.profile.cfi:
            self.loaded.process.cfi = ShadowStackCfi.for_loaded(self.loaded)
        version = VULNERABLE_VERSION if self.vulnerable else PATCHED_VERSION
        core_class = DnsProxyCore if self.spec.protocol == "dns" else RawCopyCore
        self.core = core_class(self.loaded, version, self.spec.frame, canary,
                               ret_guard=ret_guard)
        self.crashed = False

    restart = boot

    @property
    def alive(self) -> bool:
        return not self.crashed

    @property
    def compromised(self) -> bool:
        return any(event.kind == EventKind.COMPROMISED for event in self.events)

    def _record(self, event: DaemonEvent) -> DaemonEvent:
        self.events.append(event)
        if event.kind in (EventKind.CRASHED, EventKind.HUNG, EventKind.COMPROMISED):
            self.crashed = True
        return event

    # -- protocol entry points --------------------------------------------------

    def handle_dns_reply(self, reply: bytes, expected_id: Optional[int] = None) -> DaemonEvent:
        if self.spec.protocol != "dns":
            raise ValueError(f"{self.spec.name} is not a DNS service")
        if not self.alive:
            return DaemonEvent(kind=EventKind.DROPPED, detail="service is down")
        assert isinstance(self.core, DnsProxyCore)
        return self._record(self.core.handle_reply(reply, expected_id=expected_id))

    def handle_http_request(self, raw: bytes) -> DaemonEvent:
        if self.spec.protocol != "http":
            raise ValueError(f"{self.spec.name} is not an HTTP service")
        if not self.alive:
            return DaemonEvent(kind=EventKind.DROPPED, detail="service is down")
        body = _http_body(raw)
        if body is None:
            return self._record(
                DaemonEvent(kind=EventKind.DROPPED, detail="malformed HTTP request")
            )
        assert isinstance(self.core, RawCopyCore)
        return self._record(self.core.handle_raw(body))

    def handle_tcp_packet(self, raw: bytes) -> DaemonEvent:
        if self.spec.protocol != "tcp":
            raise ValueError(f"{self.spec.name} is not a TCP service")
        if not self.alive:
            return DaemonEvent(kind=EventKind.DROPPED, detail="service is down")
        if len(raw) < 6 or raw[:4] != b"CTRL":
            return self._record(
                DaemonEvent(kind=EventKind.DROPPED, detail="bad control-packet magic")
            )
        length = int.from_bytes(raw[4:6], "big")
        body = raw[6 : 6 + length]
        assert isinstance(self.core, RawCopyCore)
        return self._record(self.core.handle_raw(body))


def _http_body(raw: bytes) -> Optional[bytes]:
    """Minimal HTTP/1.1 POST parser: request line, headers, body."""
    head, separator, body = raw.partition(b"\r\n\r\n")
    if not separator:
        return None
    lines = head.split(b"\r\n")
    request_line = lines[0].split(b" ")
    if len(request_line) != 3 or request_line[0] != b"POST":
        return None
    if not request_line[2].startswith(b"HTTP/1."):
        return None
    content_length = None
    for header in lines[1:]:
        name, _, value = header.partition(b":")
        if name.strip().lower() == b"content-length":
            try:
                content_length = int(value.strip())
            except ValueError:
                return None
    if content_length is None or content_length != len(body):
        return None
    return body


def http_respond(service: AdaptedService, raw: bytes):
    """Full HTTP round trip: request bytes in, (response bytes, event) out.

    A crashed/compromised service produces no response (the TCP peer sees
    a reset); malformed requests get 400; accepted upgrades get 200.
    """
    event = service.handle_http_request(raw)
    if event.kind == EventKind.RESPONDED:
        body = b"upgrade accepted\n"
        response = (
            b"HTTP/1.1 200 OK\r\nContent-Length: " + str(len(body)).encode()
            + b"\r\n\r\n" + body
        )
    elif event.kind == EventKind.DROPPED and "down" in event.detail:
        response = b"HTTP/1.1 503 Service Unavailable\r\nContent-Length: 0\r\n\r\n"
    elif event.kind == EventKind.DROPPED:
        response = b"HTTP/1.1 400 Bad Request\r\nContent-Length: 0\r\n\r\n"
    else:  # CRASHED / COMPROMISED / HUNG: connection dies mid-request.
        response = None
    return response, event


def make_http_request(body: bytes, path: bytes = b"/cgi-bin/firmware-upgrade") -> bytes:
    """Craft the POST carrying a payload ('modifying the packet creation
    algorithm', §V)."""
    return (
        b"POST " + path + b" HTTP/1.1\r\n"
        b"Host: 192.168.1.1\r\n"
        b"Content-Type: application/octet-stream\r\n"
        b"Content-Length: " + str(len(body)).encode() + b"\r\n"
        b"\r\n" + body
    )


def make_tcp_packet(body: bytes) -> bytes:
    return b"CTRL" + len(body).to_bytes(2, "big") + body
