"""Retargeting the Connman exploit at other services (§V).

* **minimal modification** (DNS family): re-run recon against the new
  binary/frame — "changing variables to memory addresses suitable for the
  targeted vulnerability" — then deliver over the same malicious-DNS
  channel;
* **moderate modification** (HTTP/TCP): additionally swap the packet
  creation algorithm — the raw stack image goes into a POST body or a
  control packet instead of a label stream.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from ..connman import DaemonEvent
from ..dns import build_raw_response, make_query
from ..exploit import Exploit, ExploitBuilder, GadgetFinder, TargetKnowledge
from ..mem import BASE_LAYOUTS
from .victims import AdaptedService, make_http_request, make_tcp_packet


def knowledge_for_service(service: AdaptedService, *, aslr_blind: Optional[bool] = None
                          ) -> TargetKnowledge:
    """Recon against an adaptation target (same procedure as for Connman)."""
    if aslr_blind is None:
        aslr_blind = service.profile.aslr
    binary = service.binary
    text = binary.section(".text")
    mapped_base = (text.address + 0x300) & ~0xFF
    common = dict(
        arch=service.spec.arch,
        frame=service.spec.frame,
        binary=binary,
        finder=GadgetFinder(binary),
        plt=dict(binary.plt),
        bss=binary.symbols.address_of("__bss_start"),
        mapped_word_base=mapped_base,
    )
    assert service.loaded is not None and service.core is not None
    if aslr_blind:
        base = BASE_LAYOUTS[service.spec.arch].libc_base
        libc = {
            name: base + service.libc_image.binary.symbols.address_of(name)
            for name in ("system", "exit", "execlp", "str_bin_sh")
        }
        return TargetKnowledge(**common, libc=libc, libc_is_assumed=True)
    place = service.core.placement()
    libc = {
        name: service.loaded.libc.symbols.address_of(name)
        for name in ("system", "exit", "execlp", "str_bin_sh")
    }
    return TargetKnowledge(
        **common,
        name_address=place.name_address,
        ret_slot=place.ret_slot,
        libc=libc,
    )


def adapt_exploit(builder: ExploitBuilder, service: AdaptedService,
                  *, aslr_blind: Optional[bool] = None) -> Exploit:
    """The §V 'minimal modification': same builder, new target knowledge."""
    return builder.build(knowledge_for_service(service, aslr_blind=aslr_blind))


@dataclass
class AdaptationReport:
    service_name: str
    cve_id: str
    protocol: str
    exploit: Exploit
    event: DaemonEvent

    @property
    def got_root_shell(self) -> bool:
        return self.event.is_root_shell

    def describe(self) -> str:
        return (
            f"{self.service_name} ({self.cve_id}, {self.protocol}): "
            f"{self.event.describe()}"
        )


def deliver_to_service(exploit: Exploit, service: AdaptedService,
                       rng: Optional[random.Random] = None) -> AdaptationReport:
    """Deliver over whatever transport the target service speaks."""
    rng = rng or random.Random(0xADA)
    protocol = service.spec.protocol
    if protocol == "dns":
        query = make_query(rng.randrange(1 << 16), "probe.victim.example")
        reply = build_raw_response(query, exploit.blob)
        event = service.handle_dns_reply(reply, expected_id=query.id)
    elif protocol == "http":
        event = service.handle_http_request(make_http_request(exploit.payload.image))
    elif protocol == "tcp":
        event = service.handle_tcp_packet(make_tcp_packet(exploit.payload.image))
    else:  # pragma: no cover - specs are closed
        raise ValueError(f"unknown protocol {protocol!r}")
    return AdaptationReport(
        service_name=service.spec.name,
        cve_id=service.spec.cve_id,
        protocol=protocol,
        exploit=exploit,
        event=event,
    )
