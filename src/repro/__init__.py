"""repro — full-system reproduction of *Exploiting Memory Corruption
Vulnerabilities in Connman for IoT Devices* (DSN 2019) on a simulated
substrate.

Layers (bottom to top):

* :mod:`repro.mem`       — 32-bit address space, permissions, layouts, ASLR
* :mod:`repro.cpu`       — x86 + ARMv7 assemblers/decoders/emulators, libc natives
* :mod:`repro.binfmt`    — ELF-like images, the Connman binary factory, loader
* :mod:`repro.dns`       — DNS wire protocol, servers, malicious server
* :mod:`repro.connman`   — the vulnerable dnsproxy + daemon (CVE-2017-12865)
* :mod:`repro.net`       — LAN/DHCP/Wi-Fi simulation, the Wi-Fi Pineapple
* :mod:`repro.firmware`  — firmware catalog, IoT device models, CVE audit
* :mod:`repro.defenses`  — W^X/ASLR profiles, canary, CFI, software diversity
* :mod:`repro.exploit`   — payload planner, shellcode, gadget finder, builders
* :mod:`repro.othercves` — §V adaptation targets (dnsmasq/systemd/HTTP/TCP)
* :mod:`repro.obs`       — event tracing, metrics, pcap-text capture export
* :mod:`repro.core`      — the paper's experiments E1–E8

Quickstart::

    from repro.core import run_scenario, PAPER_MATRIX
    for scenario in PAPER_MATRIX:
        print(run_scenario(scenario).row())

Everything runs against emulated processes in this Python process; no real
network traffic, binaries, or devices are involved.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
