"""E7 — suggested mitigations (paper §IV).

Regenerates the mitigation table (patch / canary / CFI / diversity, each
against the strongest applicable attack) plus the diversity survival
figure: how much attacker address knowledge transfers between builds.
"""

from repro.core import diversity_survival, e7_mitigations

from .conftest import run_experiment_bench


def test_bench_e7_mitigations_table(benchmark):
    result = run_experiment_bench(benchmark, e7_mitigations)
    assert len(result.rows) == 10  # 5 mitigations x 2 arches


def test_bench_e7_diversity_survival_series(benchmark):
    reports = benchmark.pedantic(
        lambda: diversity_survival("x86", seeds=6), rounds=1, iterations=1
    )
    rates = [report.gadget_survival_rate for report in reports]
    benchmark.extra_info["survival_rates"] = [round(rate, 3) for rate in rates]
    # The probabilistic-protection claim: most gadget addresses die.
    assert all(rate < 0.5 for rate in rates)
    assert all(report.plt_moved > 0 for report in reports)
