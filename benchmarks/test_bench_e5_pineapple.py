"""E5 — remote MITM via Wi-Fi Pineapple (paper §III-D, Fig. 1).

Regenerates the remote-attack rows: x86 feasibility smash plus all three
ARM exploits delivered through the rogue AP + DHCP + rogue-DNS path.
"""

from repro.core import e5_pineapple

from .conftest import run_experiment_bench


def test_bench_e5_pineapple_table(benchmark):
    result = run_experiment_bench(benchmark, e5_pineapple)
    assert len(result.rows) == 4
    assert all(row[2] for row in result.rows)                 # every device roamed
    assert all(row[3] == "172.16.42.1" for row in result.rows)  # rogue DNS via DHCP
