"""E10 — brute-forcing ASLR (related-work strategy, §VI).

Regenerates the brute-force table: ~2^8 attempts defeat 32-bit mmap ASLR
against a respawning daemon; the §VII return-address guard ends the party.
"""

from repro.core import e10_bruteforce

from .conftest import run_experiment_bench


def test_bench_e10_bruteforce_table(benchmark):
    result = run_experiment_bench(benchmark, e10_bruteforce)
    plain_attempts = result.rows[0][1]
    # The 8-bit entropy estimate: a seeded run lands near 256 tries.
    assert 16 <= plain_attempts <= 2048
