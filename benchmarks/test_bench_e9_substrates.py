"""E9 — substrate micro-benchmarks.

Not a paper table; throughput numbers for the building blocks so
regressions in the simulation layers are visible: DNS codec, emulator
step rate, gadget scanning, the label planner, and daemon boot.
"""

import random

from repro.binfmt import build_connman
from repro.connman import ConnmanDaemon
from repro.cpu import Process, make_emulator
from repro.cpu.x86 import asm as x86
from repro.cpu.arm import asm as arm
from repro.defenses import NONE, WX_ASLR
from repro.dns import Message, ResourceRecord, make_query, make_response
from repro.exploit import GadgetFinder, cyclic, fill, plan_labels
from repro.mem import AddressSpace, Perm


def test_bench_dns_message_encode(benchmark):
    query = make_query(1, "www.long-subdomain.example.com")
    response = make_response(
        query, tuple(ResourceRecord.a("www.long-subdomain.example.com", f"10.0.0.{i}")
                     for i in range(4))
    )
    wire = benchmark(response.encode)
    assert len(wire) > 50


def test_bench_dns_message_decode(benchmark):
    query = make_query(1, "www.example.com")
    wire = make_response(query, (ResourceRecord.a("www.example.com", "1.2.3.4"),)).encode()
    message = benchmark(Message.decode, wire)
    assert message.answers


def test_bench_x86_emulator_steps(benchmark):
    space = AddressSpace()
    space.map_new("code", 0x1000, 0x1000, Perm.RX)
    # 200 arithmetic instructions then a clean exit syscall.
    body = (x86.inc_reg("eax") + x86.dec_reg("ecx") + x86.xor_reg_reg("edx", "edx")) * 66
    body += x86.mov_reg_imm32("eax", 1) + x86.xor_reg_reg("ebx", "ebx") + x86.int_(0x80)
    space.write(0x1000, body, check=False)

    def run():
        process = Process("x86", space)
        process.pc = 0x1000
        space.map_new("stack", 0x20000, 0x1000, Perm.RW) if not space.has_segment("stack") else None
        process.sp = 0x20800
        return make_emulator(process).run()

    result = benchmark(run)
    assert result.reason == "exit"


def test_bench_arm_emulator_steps(benchmark):
    space = AddressSpace()
    space.map_new("code", 0x1000, 0x2000, Perm.RX)
    space.map_new("stack", 0x20000, 0x1000, Perm.RW)
    body = (arm.add_imm("r0", "r0", 1) + arm.mov_reg("r1", "r0") + arm.nop()) * 100
    body += arm.mov_imm("r7", 1) + arm.svc(0)
    space.write(0x1000, body, check=False)

    def run():
        process = Process("arm", space)
        process.pc = 0x1000
        process.sp = 0x20800
        return make_emulator(process).run()

    result = benchmark(run)
    assert result.reason == "exit"


def test_bench_gadget_scan_x86(benchmark):
    binary = build_connman("x86")
    gadgets = benchmark(lambda: GadgetFinder(binary).all_gadgets())
    assert gadgets


def test_bench_gadget_scan_arm(benchmark):
    binary = build_connman("arm")
    gadgets = benchmark(lambda: GadgetFinder(binary).all_gadgets())
    assert gadgets


def test_bench_label_planner_1400_bytes(benchmark):
    pattern = cyclic(1400)
    plan = benchmark(lambda: plan_labels([fill(1400, pattern=pattern)]))
    assert plan.expansion_length == 1401


def test_bench_daemon_boot(benchmark):
    rng = random.Random(1)
    daemon = benchmark(lambda: ConnmanDaemon(arch="arm", profile=WX_ASLR, rng=rng))
    assert daemon.alive


def test_bench_benign_proxy_resolution(benchmark):
    from repro.dns import SimpleDnsServer, StubResolver

    daemon = ConnmanDaemon(arch="x86", profile=NONE)
    upstream = SimpleDnsServer(default_address="9.9.9.9")
    resolver = StubResolver()
    names = iter(f"host-{i}.example" for i in range(1_000_000))

    def resolve():
        return resolver.resolve(
            lambda packet: daemon.handle_client_query(packet, upstream.handle_query),
            next(names),
        )

    result = benchmark(resolve)
    assert result.ok
