"""E3 — W^X bypass (paper §III-B).

Regenerates the ret2libc (x86) / gadget-execlp (ARM, Listing 2) results,
the short-gadget parse_rr SIGSEGV, and the vs-ASLR negative controls.
"""

from repro.core import AttackScenario, e3_wx_bypass, run_scenario
from repro.defenses import WX

from .conftest import run_experiment_bench


def test_bench_e3_wx_table(benchmark):
    result = run_experiment_bench(benchmark, e3_wx_bypass)
    wins = [row for row in result.rows if row[1] == "vs W^X victim"]
    assert len(wins) == 2 and all(row[2] == "root shell" for row in wins)


def test_bench_e3_arm_gadget_attack_latency(benchmark):
    """Wall time of the Listing 2 attack (ARM, W^X)."""
    result = benchmark(lambda: run_scenario(AttackScenario("arm", "W^X", WX)))
    assert result.succeeded
