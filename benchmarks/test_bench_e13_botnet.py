"""E13 — botnet via poisoned forwarder delegation (§III-D's Mirai remark).

Regenerates the off-path campaign table: one Kaminsky-style delegation
poisoning of the home forwarder, then fleet-wide recruitment through the
victims' own trusted resolver.
"""

from repro.core import e13_botnet

from .conftest import run_experiment_bench


def test_bench_e13_botnet_table(benchmark):
    result = run_experiment_bench(benchmark, e13_botnet)
    recruited = sum(1 for row in result.rows if row[5])
    assert recruited == 5
