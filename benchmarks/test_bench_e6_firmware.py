"""E6 — firmware survey (paper §III intro).

Regenerates the Yocto/OpenELEC/Tizen vulnerability table.
"""

from repro.core import e6_firmware_survey

from .conftest import run_experiment_bench


def test_bench_e6_firmware_table(benchmark):
    result = run_experiment_bench(benchmark, e6_firmware_survey)
    vulnerable = {row[0] for row in result.rows if row[2]}
    assert {"yocto-pyro", "openelec-8", "tizen-3"} <= vulnerable
    assert "tizen-4" not in vulnerable
