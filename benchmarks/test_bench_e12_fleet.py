"""E12 — household fleet compromise (§I motivation).

Regenerates the blast-radius table: one evil twin, six devices, every
vulnerable Connman rooted, the patched straggler merely hijacked at the
network layer.
"""

from repro.core import e12_fleet

from .conftest import run_experiment_bench


def test_bench_e12_fleet_table(benchmark):
    result = run_experiment_bench(benchmark, e12_fleet)
    rooted = sum(1 for row in result.rows if row[5] == "ROOT SHELL")
    assert rooted == 5
    assert all(row[4] for row in result.rows)  # everyone roamed
