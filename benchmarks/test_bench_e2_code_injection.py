"""E2 — code injection with no protections (paper §III-A).

Regenerates the first two cells of the attack matrix (x86 + ARMv7 root
shells) and the W^X negative control, and times the end-to-end attack
(recon + build + deliver + emulated hijack).
"""

from repro.core import AttackScenario, e2_code_injection, run_scenario
from repro.defenses import NONE

from .conftest import run_experiment_bench


def test_bench_e2_code_injection_table(benchmark):
    result = run_experiment_bench(benchmark, e2_code_injection)
    shells = [row for row in result.rows if row[1] == "none"]
    assert all(row[3] == "root shell" for row in shells)


def test_bench_e2_single_attack_latency(benchmark):
    """Wall time of one complete no-protections attack on x86."""
    result = benchmark(lambda: run_scenario(AttackScenario("x86", "none", NONE)))
    assert result.succeeded
