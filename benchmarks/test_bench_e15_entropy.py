"""E15 — brute-force cost vs. ASLR entropy (figure series).

Regenerates the attempts-vs-entropy curve: medians track the randomization
span as it grows 16 -> 1024 pages.
"""

from repro.core import e15_entropy_sweep

from .conftest import run_experiment_bench


def test_bench_e15_entropy_series(benchmark):
    result = run_experiment_bench(benchmark, lambda: e15_entropy_sweep(runs_per_point=3))
    assert result.rows[-1][0] == "(scaling)"
    benchmark.extra_info["series"] = [row[:3] for row in result.rows[:-1]]
