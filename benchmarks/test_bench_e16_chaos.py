"""E16 — chaos sweep: degradation, supervision, and attack under faults.

Regenerates the reliability table: fresh answers fall and serve-stale
rises with the fault rate, and the supervisor's start-limit budget halts
the brute force that bare init would let succeed.
"""

from repro.core import e16_chaos

from .conftest import run_experiment_bench


def test_bench_e16_chaos(benchmark):
    result = run_experiment_bench(benchmark, e16_chaos)
    labels = [row[0] for row in result.rows]
    assert "(bruteforce, bare init)" in labels
    assert "(bruteforce, supervised)" in labels
    benchmark.extra_info["sweep"] = [row[:4] for row in result.rows]
