"""E1 — DoS via malformed DNS response (paper §III, crash PoC).

Regenerates the crash/patched table: Connman <= 1.34 takes SIGSEGV from the
oversized Type A answer on both architectures; 1.35 drops the packet.
"""

from repro.core import e1_dos

from .conftest import run_experiment_bench


def test_bench_e1_dos_table(benchmark):
    result = run_experiment_bench(benchmark, e1_dos)
    crashed = [row for row in result.rows if row[1] == "1.34"]
    survived = [row for row in result.rows if row[1] == "1.35"]
    assert all(not row[3] for row in crashed)   # daemon down
    assert all(row[3] for row in survived)      # daemon alive
