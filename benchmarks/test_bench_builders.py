"""Builder micro-benchmarks: payload construction cost per technique.

Exploit *construction* is pure planning (field layout + label DP); these
times are what the auto-exploiter pays per ladder rung before any
delivery happens.
"""

from repro.core import AttackScenario, attacker_knowledge
from repro.defenses import NONE, WX, WX_ASLR
from repro.exploit import (
    ArmCodeInjection,
    ArmExeclpGadget,
    ArmRopMemcpyExeclp,
    GadgetFinder,
    X86CodeInjection,
    X86JmpEspInjection,
    X86Ret2Libc,
    X86RopMemcpyExeclp,
)


def knowledge(arch, profile):
    return attacker_knowledge(AttackScenario(arch, "bench", profile))


def test_bench_build_x86_code_injection(benchmark):
    k = knowledge("x86", NONE)
    exploit = benchmark(lambda: X86CodeInjection().build(k))
    assert exploit.payload.labels


def test_bench_build_arm_code_injection(benchmark):
    k = knowledge("arm", NONE)
    exploit = benchmark(lambda: ArmCodeInjection().build(k))
    assert exploit.payload.labels


def test_bench_build_x86_ret2libc(benchmark):
    k = knowledge("x86", WX)
    exploit = benchmark(lambda: X86Ret2Libc().build(k))
    assert exploit.payload.labels


def test_bench_build_arm_gadget_execlp(benchmark):
    k = knowledge("arm", WX)
    exploit = benchmark(lambda: ArmExeclpGadget().build(k))
    assert exploit.payload.labels


def test_bench_build_x86_rop(benchmark):
    k = knowledge("x86", WX_ASLR)
    exploit = benchmark(lambda: X86RopMemcpyExeclp().build(k))
    assert exploit.payload.labels


def test_bench_build_arm_rop(benchmark):
    k = knowledge("arm", WX_ASLR)
    exploit = benchmark(lambda: ArmRopMemcpyExeclp().build(k))
    assert exploit.payload.labels


def test_bench_build_jmp_esp(benchmark):
    k = knowledge("x86", WX_ASLR)
    exploit = benchmark(lambda: X86JmpEspInjection().build(k))
    assert exploit.payload.labels


def test_bench_gadget_census(benchmark):
    from repro.binfmt import build_connman

    binary = build_connman("arm")
    census = benchmark(lambda: GadgetFinder(binary).census())
    assert census
