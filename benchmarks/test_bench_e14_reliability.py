"""E14 — exploit reliability across fresh randomization draws.

Regenerates the reliability table: address-independent techniques are
deterministic; randomized-absolute techniques drop to the entropy lottery.
"""

from repro.core import e14_reliability

from .conftest import run_experiment_bench


def test_bench_e14_reliability_table(benchmark):
    result = run_experiment_bench(benchmark, lambda: e14_reliability(trials=10))
    always = [row for row in result.rows if row[4] == "always"]
    lottery = [row for row in result.rows if row[4] == "lottery"]
    assert all(row[3] == "10/10" for row in always)
    assert all(row[3].startswith("0/") for row in lottery)
