"""E11 — off-path spoofing delivery (§III-D's cache-poisoning remark).

Regenerates the spoof-race table: large guessed-id bursts against a chatty
device land the exploit without any MITM position; small bursts lose the
race to the legitimate resolver.
"""

from repro.core import e11_offpath

from .conftest import run_experiment_bench


def test_bench_e11_offpath_table(benchmark):
    result = run_experiment_bench(benchmark, e11_offpath)
    assert result.rows[0][0] == 2048 and result.rows[1][0] == 4
