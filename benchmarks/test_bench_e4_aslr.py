"""E4 — W^X + ASLR bypass via ROP (paper §III-C, Listings 3–5).

Regenerates the ROP results on both architectures, the ARM three-call
horizon failure, and times chain construction separately from delivery
(the build is pure planning; delivery includes the emulated hijack).
"""

from repro.core import AttackScenario, attacker_knowledge, e4_aslr_bypass, run_scenario
from repro.defenses import WX_ASLR
from repro.exploit import ArmRopMemcpyExeclp, X86RopMemcpyExeclp

from .conftest import run_experiment_bench


def test_bench_e4_aslr_table(benchmark):
    result = run_experiment_bench(benchmark, e4_aslr_bypass)
    wins = [row for row in result.rows if row[1] == "rop (paper chain)"]
    assert len(wins) == 2 and all(row[2] == "root shell" for row in wins)


def test_bench_e4_x86_chain_build(benchmark):
    knowledge = attacker_knowledge(AttackScenario("x86", "W^X+ASLR", WX_ASLR))
    exploit = benchmark(lambda: X86RopMemcpyExeclp().build(knowledge))
    assert exploit.payload.labels


def test_bench_e4_arm_chain_build(benchmark):
    knowledge = attacker_knowledge(AttackScenario("arm", "W^X+ASLR", WX_ASLR))
    exploit = benchmark(lambda: ArmRopMemcpyExeclp().build(knowledge))
    assert exploit.payload.labels


def test_bench_e4_full_rop_attack_latency(benchmark):
    result = benchmark(lambda: run_scenario(AttackScenario("arm", "W^X+ASLR", WX_ASLR)))
    assert result.succeeded
