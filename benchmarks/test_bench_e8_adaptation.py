"""E8 — adapting the exploit to other CVEs (paper §V).

Regenerates the adaptation matrix: dnsmasq/systemd/asterisk over DNS
(minimal modification), HTTP and TCP victims (moderate modification), each
rooted under the full W^X+ASLR profile.
"""

from repro.core import e8_adaptation
from repro.defenses import WX_ASLR

from .conftest import run_experiment_bench


def test_bench_e8_adaptation_table(benchmark):
    result = run_experiment_bench(
        benchmark, lambda: e8_adaptation(profiles=(("W^X+ASLR", WX_ASLR),))
    )
    assert len(result.rows) == 6
    protocols = {row[2] for row in result.rows}
    assert protocols == {"dns", "http", "tcp"}
