"""Benchmark harness helpers.

Every experiment bench runs the corresponding E* function once per round,
asserts its internal expectation column, and attaches the paper-style table
to the benchmark record (``--benchmark-verbose`` / JSON export carries it).
Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations


def run_experiment_bench(benchmark, experiment_fn, *, rounds: int = 1):
    """Benchmark one experiment end to end and verify its expectations."""
    result = benchmark.pedantic(experiment_fn, rounds=rounds, iterations=1)
    assert result.all_pass, result.describe()
    benchmark.extra_info["experiment"] = result.experiment_id
    benchmark.extra_info["rows"] = len(result.rows)
    benchmark.extra_info["table"] = result.describe()
    return result
